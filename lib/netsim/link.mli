(** Simulated FIFO channel.

    This is the paper's "channel" abstraction (§2): a logical FIFO path
    with a service rate, a propagation delay that may vary packet to
    packet (skew/jitter), and a loss process. FIFO order is preserved even
    under jitter — the model clamps each arrival to be no earlier than the
    previous arrival, matching the paper's assumption that each channel
    delivers in order while skew varies. An optional {!Impair} profile
    deliberately breaks that assumption (reordering, duplication,
    corruption) to exercise the receiver's containment machinery.

    The link is generic in its payload type; callers pass the wire size of
    each payload explicitly, so this module has no dependency on any
    particular packet format.

    A link owns a transmit queue of bounded byte capacity: packets sent
    while the serializer is busy queue up; packets that would overflow the
    queue are dropped at the sender (tail drop), which is how congestion
    loss arises in the flow-control experiments.

    A link also models {e carrier}: it starts up, and {!set_up} (driven by
    the {!Fault} injector) pulls or restores the cable. While down the
    link drops everything silently — fresh sends, the transmit queue, the
    packet being serialized, and packets still in flight — exactly the
    failure mode a striping bundle must survive. Carrier transitions are
    observable both as [Channel_down]/[Channel_up] events on the sink and
    through registered {!on_carrier} watchers (the simulated equivalent of
    a NIC driver's link-state interrupt). *)

type 'a t

val create :
  Sim.t ->
  ?name:string ->
  rate_bps:float ->
  prop_delay:float ->
  ?jitter:(Rng.t -> float) ->
  ?rng:Rng.t ->
  ?loss:Loss.t ->
  ?impair:Impair.t ->
  ?corrupt:('a -> 'a option) ->
  ?txq_capacity_bytes:int ->
  ?mtu:int ->
  ?channel:int ->
  ?sink:Stripe_obs.Sink.t ->
  deliver:('a -> unit) ->
  unit ->
  'a t
(** [create sim ~rate_bps ~prop_delay ~deliver ()] makes a link that calls
    [deliver payload] at each arrival instant.

    - [rate_bps]: serialization rate in bits per second (must be > 0).
    - [prop_delay]: base one-way propagation delay in seconds.
    - [jitter]: extra per-packet delay drawn at each transmission
      (default: none). Arrivals remain FIFO regardless.
    - [loss]: loss process applied per packet (default: lossless).
    - [impair]: intra-channel impairment profile (default: {!Impair.none})
      — reordering {e breaks} the FIFO clamp (unlike [jitter]),
      duplication delivers a packet twice, corruption damages it on the
      wire. See {!Impair}.
    - [corrupt]: what a wire-corrupted payload becomes. [None] result (or
      no hook) means the link-level CRC caught the damage and the packet
      is discarded at arrival ([Corrupt_discard] event, {!corrupt_drops});
      [Some payload'] means the CRC missed it and the mangled payload is
      delivered — for modelling damage only protocol-level integrity
      checks can catch.
    - [txq_capacity_bytes]: transmit queue bound (default: unbounded).
    - [mtu]: maximum payload size accepted; oversized sends raise
      [Invalid_argument] (default: no limit).
    - [sink] with [channel]: observability events at simulator time —
      [Dequeue] when a packet starts serializing, [Drop] when the loss
      process takes it, [Txq_drop] on transmit-queue overflow, [Arrival]
      at delivery. [channel] tags the events (default [-1]); the payload
      is opaque here so they carry size but no sequence number. *)

val send : 'a t -> size:int -> 'a -> bool
(** [send t ~size payload] queues a packet for transmission. Returns
    [false] if the transmit queue was full and the packet was dropped at
    the sender; [true] if it was accepted (it may still be lost in
    flight). Raises [Invalid_argument] if [size] exceeds the MTU or is
    not positive. *)

val name : 'a t -> string

val mtu : 'a t -> int option

val rate_bps : 'a t -> float

val set_rate_bps : 'a t -> float -> unit
(** Change the service rate for subsequently transmitted packets (models
    the paper's variable-rate ATM PVC). *)

val is_up : 'a t -> bool
(** Whether the link currently has carrier. Links are created up. *)

val set_up : 'a t -> bool -> unit
(** [set_up t up] changes the carrier state. Going down flushes the
    transmit queue (every queued packet is counted in {!down_drops} and
    reported as a [Drop] event), and packets serializing or in flight are
    dropped when their completion instant arrives. Transitions emit
    [Channel_down]/[Channel_up] on the sink and invoke every
    {!on_carrier} watcher; setting the current state is a no-op. *)

val on_carrier : 'a t -> (up:bool -> unit) -> unit
(** Register a carrier watcher, called after every {!set_up} transition
    with the new state. Watchers run in registration order; the striping
    layer uses this to suspend and resume dead members automatically. *)

val loss_process : 'a t -> Loss.t
(** The loss process currently applied to transmissions. *)

val set_loss : 'a t -> Loss.t -> unit
(** Replace the loss process (fault injection: burst-loss episodes swap a
    harsher process in and the original back afterwards). *)

val impairments : 'a t -> Impair.t
(** The impairment profile currently applied to transmissions. *)

val set_impairments : 'a t -> Impair.t -> unit
(** Replace the impairment profile (e.g. [--impair-stop] clearing every
    profile mid-run to let the receiver resynchronize). *)

val queue_bytes : 'a t -> int
(** Bytes currently waiting in the transmit queue (excluding the packet
    being serialized). Used by the shortest-queue-first baseline. *)

val queue_packets : 'a t -> int

val busy : 'a t -> bool
(** Whether the serializer is currently transmitting a packet. *)

(** Cumulative counters since creation. *)

val sent_packets : 'a t -> int
val sent_bytes : 'a t -> int
val delivered_packets : 'a t -> int
val delivered_bytes : 'a t -> int
val lost_packets : 'a t -> int
val txq_drops : 'a t -> int

val down_drops : 'a t -> int
(** Packets dropped because the link was down: rejected sends, flushed
    queue entries, and serializations or flights that completed while the
    carrier was gone. Disjoint from {!lost_packets} and {!txq_drops}. *)

val reordered_packets : 'a t -> int
(** Deliveries scheduled with an unclamped reordering delay. *)

val duplicated_packets : 'a t -> int
(** Packets for which a second delivery copy was scheduled. *)

val corrupted_packets : 'a t -> int
(** Delivery copies damaged by the corruption impairment (whether the
    CRC then caught them or not). *)

val corrupt_drops : 'a t -> int
(** Corrupted copies the simulated link CRC discarded at arrival. Always
    [<= corrupted_packets]; the difference is mangled deliveries. *)
