(** Chaos plans: correlated fault storms and endpoint crash/restart.

    {!Fault} injects events against individual links; this module
    composes the fleet-scale failures above it — a {e storm} takes a
    whole shared-risk group of channels down at once, a {e crash} takes
    one endpoint of one bundle down for a finite downtime, and a
    {e violate} is the test-only hook that poisons an invariant monitor
    to prove the monitoring path fires. A plan is parsed from a compact
    [--chaos] spec or drawn from a seeded {!Rng}, and {!apply} compiles
    it to numbered primitive transitions on the simulator clock — so a
    failure is always reportable as "seed S, event N". *)

type side = Tx | Rx  (** Which endpoint of a bundle a crash hits. *)

(** How a [Degrade] action hurts its channel — the gray-failure palette
    (PROTOCOL.md §13). None of these take the carrier cleanly down: the
    channel stays in the rotation, just worse, which is the regime the
    health engine exists to detect. *)
type degrade =
  | Loss_ramp of float
      (** Bernoulli loss escalating in four equal steps to the given
          probability over the window, then cleared. *)
  | Gilbert_loss of float
      (** Bursty Gilbert–Elliott loss for the window: the bad state
          loses at the given probability, the good state at 1/20th of
          it. *)
  | Rate_collapse of float
      (** The channel's service rate scaled by the given fraction
          (0 < f <= 1) for the window, then restored. *)
  | Flap of float
      (** The carrier bounces with the given period (down half, up
          half) across the window, ending up. *)

type action =
  | Storm of { channels : int list; at : float; duration : float }
      (** Carrier loss on every channel of the group at [at], recovery
          for all of them [duration] later. *)
  | Crash of { side : side; bundle : int; at : float; downtime : float }
      (** One endpoint of [bundle] crashes at [at] and restarts
          [downtime] later (PROTOCOL.md §12). *)
  | Violate of { bundle : int; at : float }
      (** Deliberately corrupt [bundle]'s FIFO monitor state at [at] —
          a detection self-test, not a protocol event. *)
  | Degrade of { channel : int; kind : degrade; at : float; duration : float }
      (** Gray failure: [channel] degrades per [kind] from [at] for
          [duration] seconds, then the impairment clears. *)

type driver = {
  set_channel_up : int -> bool -> unit;
  crash : side -> int -> unit;
  restart : side -> int -> unit;
  violate : int -> unit;
  set_loss : int -> Loss.t -> unit;
      (** Install a loss process on a channel ([Loss.none ()] clears). *)
  scale_rate : int -> float -> unit;
      (** Scale a channel's service rate relative to its {e nominal}
          rate (1.0 restores; the driver owns the nominal). *)
}
(** How a plan acts on the system under test. The module is agnostic:
    a {!Bundle_pool} fleet maps these straight onto
    [set_channel_up] / [crash_sender] / [restart_receiver] / ...;
    a two-endpoint [Stripe_layer] run maps channels to links and
    ignores the bundle id. *)

val apply :
  Sim.t ->
  ?on_event:(index:int -> time:float -> string -> unit) ->
  driver ->
  action list ->
  unit
(** Compile the plan to primitive transitions (a storm is one down and
    one up per member channel; a crash is a crash and a restart),
    number them in deterministic time order, and schedule each on the
    simulator. [on_event] fires just before each transition — record
    the last index seen and any monitor violation is pinned to its
    event neighborhood. Raises [Invalid_argument] on negative times,
    durations, channels, or bundles. *)

val horizon : action list -> float
(** Time by which every action of the plan has fully played out
    (including storm recoveries and restarts). *)

val random_plan :
  rng:Rng.t ->
  n_channels:int ->
  n_bundles:int ->
  horizon:float ->
  ?storm_every:float ->
  ?crash_every:float ->
  ?degrade_every:float ->
  ?mean_outage:float ->
  ?mean_downtime:float ->
  ?mean_degrade:float ->
  unit ->
  action list
(** Seeded random plan over [horizon] seconds: storms arrive as a
    Poisson process with mean gap [storm_every] (0, the default,
    disables them), each hitting a uniformly drawn non-empty channel
    subset for an exponential [mean_outage]; crashes arrive with mean
    gap [crash_every] (0 disables), each picking a side and a bundle
    uniformly with an exponential [mean_downtime]; gray degradations
    arrive with mean gap [degrade_every] (0 disables), each hitting
    one uniform channel with a uniformly drawn kind (loss ramp,
    Gilbert burst, rate collapse, or flapping) for an exponential
    window around [mean_degrade] (floored at a quarter of it). Sorted
    by time. Equal seeds give equal plans. *)

val parse_spec : string -> (action list, string) result
(** Parse a command-line chaos spec: comma-separated items
    [storm=C1+C2+.../DUR@T], [crash=tx/ID/DUR@T], [crash=rx/ID/DUR@T],
    [violate=ID@T], [degrade=CH/KIND/PARAM/DUR@T] with KIND one of
    [loss] (ramp to probability PARAM), [gilbert] (bursty loss, bad
    state loses PARAM), [rate] (service rate scaled by PARAM), [flap]
    (carrier flap period PARAM). Example:
    ["storm=0+2/0.5@1,degrade=1/gilbert/0.5/1.5@2,violate=0@4"].
    Errors are position-annotated ({!Spec.located}). *)

val side_name : side -> string
val degrade_name : degrade -> string
val pp_action : Format.formatter -> action -> unit
