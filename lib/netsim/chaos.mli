(** Chaos plans: correlated fault storms and endpoint crash/restart.

    {!Fault} injects events against individual links; this module
    composes the fleet-scale failures above it — a {e storm} takes a
    whole shared-risk group of channels down at once, a {e crash} takes
    one endpoint of one bundle down for a finite downtime, and a
    {e violate} is the test-only hook that poisons an invariant monitor
    to prove the monitoring path fires. A plan is parsed from a compact
    [--chaos] spec or drawn from a seeded {!Rng}, and {!apply} compiles
    it to numbered primitive transitions on the simulator clock — so a
    failure is always reportable as "seed S, event N". *)

type side = Tx | Rx  (** Which endpoint of a bundle a crash hits. *)

type action =
  | Storm of { channels : int list; at : float; duration : float }
      (** Carrier loss on every channel of the group at [at], recovery
          for all of them [duration] later. *)
  | Crash of { side : side; bundle : int; at : float; downtime : float }
      (** One endpoint of [bundle] crashes at [at] and restarts
          [downtime] later (PROTOCOL.md §12). *)
  | Violate of { bundle : int; at : float }
      (** Deliberately corrupt [bundle]'s FIFO monitor state at [at] —
          a detection self-test, not a protocol event. *)

type driver = {
  set_channel_up : int -> bool -> unit;
  crash : side -> int -> unit;
  restart : side -> int -> unit;
  violate : int -> unit;
}
(** How a plan acts on the system under test. The module is agnostic:
    a {!Bundle_pool} fleet maps these straight onto
    [set_channel_up] / [crash_sender] / [restart_receiver] / ...;
    a two-endpoint [Stripe_layer] run maps channels to links and
    ignores the bundle id. *)

val apply :
  Sim.t ->
  ?on_event:(index:int -> time:float -> string -> unit) ->
  driver ->
  action list ->
  unit
(** Compile the plan to primitive transitions (a storm is one down and
    one up per member channel; a crash is a crash and a restart),
    number them in deterministic time order, and schedule each on the
    simulator. [on_event] fires just before each transition — record
    the last index seen and any monitor violation is pinned to its
    event neighborhood. Raises [Invalid_argument] on negative times,
    durations, channels, or bundles. *)

val horizon : action list -> float
(** Time by which every action of the plan has fully played out
    (including storm recoveries and restarts). *)

val random_plan :
  rng:Rng.t ->
  n_channels:int ->
  n_bundles:int ->
  horizon:float ->
  ?storm_every:float ->
  ?crash_every:float ->
  ?mean_outage:float ->
  ?mean_downtime:float ->
  unit ->
  action list
(** Seeded random plan over [horizon] seconds: storms arrive as a
    Poisson process with mean gap [storm_every] (0, the default,
    disables them), each hitting a uniformly drawn non-empty channel
    subset for an exponential [mean_outage]; crashes arrive with mean
    gap [crash_every] (0 disables), each picking a side and a bundle
    uniformly with an exponential [mean_downtime]. Sorted by time.
    Equal seeds give equal plans. *)

val parse_spec : string -> (action list, string) result
(** Parse a command-line chaos spec: comma-separated items
    [storm=C1+C2+.../DUR@T], [crash=tx/ID/DUR@T], [crash=rx/ID/DUR@T],
    [violate=ID@T]. Example:
    ["storm=0+2/0.5@1,crash=rx/0/0.2@2,violate=0@4"]. *)

val side_name : side -> string
val pp_action : Format.formatter -> action -> unit
