(** Intra-channel impairment profiles.

    The protocol's correctness theorems rest on each channel being a
    {e loss-only FIFO} pipe (PROTOCOL.md §1): a channel may drop packets,
    but whatever it delivers arrives in order, exactly once, uncorrupted.
    This module describes the ways a real channel violates that contract
    without dying — reordering, duplication, corruption — as per-packet
    probabilities that {!Link} applies when scheduling deliveries:

    - {b reordering}: with probability [reorder_p] a packet's arrival gets
      an extra delay drawn uniformly from [0, reorder_window] seconds and
      is {e exempt from the FIFO arrival clamp}, so packets sent after it
      may overtake it (ordinary [jitter] keeps FIFO; this does not).
    - {b duplication}: with probability [dup_p] the packet is delivered
      twice (the copies still traverse propagation independently).
    - {b corruption}: with probability [corrupt_p] the packet is damaged
      on the wire. What the receiver sees depends on the link's [corrupt]
      hook — by default the damage is caught by the link-level CRC and
      the packet is discarded (corruption below the protocol is treated
      as loss, per the paper); a hook can instead deliver a mangled
      payload, modelling damage the CRC missed that only protocol-level
      integrity checks (the marker checksum) can catch.

    Every draw flows from the link's seeded {!Rng}, so a whole impaired
    run reproduces from one seed. *)

type t = {
  reorder_p : float;  (** P(unclamped extra delay); 0 disables. *)
  reorder_window : float;  (** Max extra delay in seconds (uniform). *)
  dup_p : float;  (** P(delivered twice); 0 disables. *)
  corrupt_p : float;  (** P(corrupted on the wire); 0 disables. *)
}

val none : t
(** No impairments — the paper's assumed channel. *)

val is_none : t -> bool
(** [true] iff every probability is 0 (the hot-path guard). *)

val make :
  ?reorder_p:float ->
  ?reorder_window:float ->
  ?dup_p:float ->
  ?corrupt_p:float ->
  unit ->
  t
(** Validating constructor: probabilities must lie in [0,1], and a
    positive [reorder_p] requires a positive [reorder_window]. *)

val parse_spec : string -> (int * t, string) result
(** Parse a command-line impairment spec, mirroring {!Fault.parse_spec}:
    [CH:IMPAIRMENT[,IMPAIRMENT...]] where [IMPAIRMENT] is
    [reorder=P/WINDOW], [dup=P], or [corrupt=P]. Example:
    ["1:reorder=0.2/0.01,dup=0.05,corrupt=0.01"]. Returns the channel
    and the accumulated profile. *)

val pp : Format.formatter -> t -> unit
