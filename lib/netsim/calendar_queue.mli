(** Calendar queue of timed events (R. Brown, CACM 1988).

    O(1) amortized add/pop for the clustered near-future event
    populations discrete-event simulations generate, against the heap's
    O(log n). Automatically resizes its bucket ring and re-derives the
    bucket width from the live event population.

    Drop-in ordering-compatible with {!Eventq}: pops ascend by time, and
    same-time events pop in insertion order (checked against the heap by
    a qcheck property over random add/pop/clear interleavings), so a
    simulation produces byte-identical seeded traces on either engine. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int

val add : 'a t -> time:float -> 'a -> unit
(** [add q ~time v] inserts [v] to fire at [time]. Allocation-free
    except when a bucket or the calendar itself resizes. *)

val peek_time : 'a t -> float option
(** Earliest scheduled time, if any. *)

val peek_time_unsafe : 'a t -> float
(** Earliest scheduled time. The queue must be non-empty (unchecked):
    guard with {!is_empty}. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event as [(time, value)]. *)

val pop_exn : 'a t -> 'a
(** Remove the earliest event and return its value without boxing; read
    the time first with {!peek_time_unsafe}. Raises [Invalid_argument]
    if the queue is empty. *)

val clear : 'a t -> unit
(** Drop all events and reset the calendar to its initial geometry. *)
