module Obs = Stripe_obs
module Fifo_queue = Stripe_packet.Fifo_queue

(* Hot-path allocation notes: the transmit queue is a struct-of-arrays
   ring ({!Stripe_packet.Fifo_queue}), the serialization-complete event
   is a single closure allocated at link creation (the packet it applies
   to rides in [ser_size]/[ser_payload] — only one packet serializes at
   a time), and [last_arrival] lives in a one-element float array
   because assigning a mutable float field of this mixed record would
   box on every packet. Per packet, the only remaining allocation is the
   arrival closure in [deliver_at], which genuinely needs its own
   environment: several packets can be in flight at once. *)

type 'a t = {
  sim : Sim.t;
  link_name : string;
  mutable rate : float;
  prop_delay : float;
  jitter : (Rng.t -> float) option;
  rng : Rng.t;
  mutable loss : Loss.t;
  mutable impair : Impair.t;
  corrupt : ('a -> 'a option) option;
  txq_capacity_bytes : int option;
  link_mtu : int option;
  obs_channel : int;
  sink : Obs.Sink.t;
  deliver : 'a -> unit;
  txq : 'a Fifo_queue.t;
  mutable serializing : bool;
  mutable ser_done : unit -> unit;
  mutable ser_size : int;
  mutable ser_payload : 'a;
  last_arrival : float array;
  mutable up : bool;
  mutable carrier_watchers : (up:bool -> unit) list;
  mutable n_sent : int;
  mutable b_sent : int;
  mutable n_delivered : int;
  mutable b_delivered : int;
  mutable n_lost : int;
  mutable n_txq_drops : int;
  mutable n_down_drops : int;
  mutable n_reordered : int;
  mutable n_duplicated : int;
  mutable n_corrupted : int;
  mutable n_corrupt_drops : int;
}

let dummy : unit -> 'a = fun () -> Obj.magic ()

let obs_emit t kind ~size =
  if Obs.Sink.active t.sink then
    Obs.Sink.emit t.sink
      (Obs.Event.v ~channel:t.obs_channel ~size ~time:(Sim.now t.sim) kind)

let[@inline] deliver_at t ~size ~at payload =
  Sim.schedule t.sim ~at (fun () ->
      if not t.up then begin
        (* Lost in flight: the link died under the packet. *)
        t.n_down_drops <- t.n_down_drops + 1;
        obs_emit t Obs.Event.Drop ~size
      end
      else begin
        t.n_delivered <- t.n_delivered + 1;
        t.b_delivered <- t.b_delivered + size;
        obs_emit t Obs.Event.Arrival ~size;
        t.deliver payload
      end)

(* Schedule one arrival (propagation + jitter, clamped to preserve FIFO),
   applying the impairment profile: a reordered copy gets an extra
   unclamped delay (and leaves [last_arrival] alone, so later packets may
   overtake it); a corrupted copy is either discarded at the receiving
   interface (the simulated CRC — corruption below the protocol is loss)
   or, when the [corrupt] hook chooses, delivered mangled. *)
let schedule_copy t ~size payload =
  let imp = t.impair in
  let extra = match t.jitter with None -> 0.0 | Some j -> max 0.0 (j t.rng) in
  let base = Sim.now t.sim +. t.prop_delay +. extra in
  let arrival =
    if imp.Impair.reorder_p > 0.0 && Rng.bernoulli t.rng ~p:imp.Impair.reorder_p
    then begin
      t.n_reordered <- t.n_reordered + 1;
      base +. Rng.float t.rng imp.Impair.reorder_window
    end
    else begin
      let a = max base t.last_arrival.(0) in
      t.last_arrival.(0) <- a;
      a
    end
  in
  let corrupted =
    imp.Impair.corrupt_p > 0.0 && Rng.bernoulli t.rng ~p:imp.Impair.corrupt_p
  in
  if not corrupted then deliver_at t ~size ~at:arrival payload
  else begin
    t.n_corrupted <- t.n_corrupted + 1;
    let damaged = match t.corrupt with None -> None | Some f -> f payload in
    match damaged with
    | Some payload' -> deliver_at t ~size ~at:arrival payload'
    | None ->
      (* The receiving interface's CRC catches the damage: the packet is
         discarded on arrival, indistinguishable from wire loss to the
         layers above. *)
      t.n_corrupt_drops <- t.n_corrupt_drops + 1;
      Sim.schedule t.sim ~at:arrival (fun () ->
          obs_emit t Obs.Event.Corrupt_discard ~size)
  end

(* Start serializing the packet at the head of the transmit queue. When
   serialization finishes ([ser_complete], the link's single reused
   completion event), schedule the arrival — twice under a duplication
   impairment — and start on the next queued packet. *)
let rec start_serialize t =
  if Fifo_queue.is_empty t.txq then t.serializing <- false
  else begin
    let size = Fifo_queue.peek_size_unsafe t.txq in
    let payload = Fifo_queue.pop_exn t.txq in
    t.serializing <- true;
    obs_emit t Obs.Event.Dequeue ~size;
    t.ser_size <- size;
    t.ser_payload <- payload;
    let ser_time = float_of_int (size * 8) /. t.rate in
    Sim.schedule_after t.sim ~delay:ser_time t.ser_done
  end

and ser_complete t =
  let size = t.ser_size in
  let payload = t.ser_payload in
  t.ser_payload <- dummy ();
  t.n_sent <- t.n_sent + 1;
  t.b_sent <- t.b_sent + size;
  if not t.up then begin
    (* The carrier vanished while the packet was serializing. *)
    t.n_down_drops <- t.n_down_drops + 1;
    obs_emit t Obs.Event.Drop ~size
  end
  else if Loss.drop t.loss t.rng then begin
    t.n_lost <- t.n_lost + 1;
    obs_emit t Obs.Event.Drop ~size
  end
  else begin
    schedule_copy t ~size payload;
    if
      t.impair.Impair.dup_p > 0.0
      && Rng.bernoulli t.rng ~p:t.impair.Impair.dup_p
    then begin
      t.n_duplicated <- t.n_duplicated + 1;
      schedule_copy t ~size payload
    end
  end;
  start_serialize t

let create sim ?(name = "link") ~rate_bps ~prop_delay ?jitter ?rng ?loss
    ?(impair = Impair.none) ?corrupt ?txq_capacity_bytes ?mtu ?(channel = -1)
    ?(sink = Obs.Sink.null) ~deliver () =
  if rate_bps <= 0.0 then invalid_arg "Link.create: rate_bps must be > 0";
  if prop_delay < 0.0 then invalid_arg "Link.create: negative prop_delay";
  let t =
    {
      sim;
      link_name = name;
      rate = rate_bps;
      prop_delay;
      jitter;
      rng = (match rng with Some r -> r | None -> Rng.create 0);
      loss = (match loss with Some l -> l | None -> Loss.none ());
      impair;
      corrupt;
      txq_capacity_bytes;
      link_mtu = mtu;
      obs_channel = channel;
      sink;
      deliver;
      txq = Fifo_queue.create ();
      serializing = false;
      ser_done = ignore;
      ser_size = 0;
      ser_payload = dummy ();
      last_arrival = [| 0.0 |];
      up = true;
      carrier_watchers = [];
      n_sent = 0;
      b_sent = 0;
      n_delivered = 0;
      b_delivered = 0;
      n_lost = 0;
      n_txq_drops = 0;
      n_down_drops = 0;
      n_reordered = 0;
      n_duplicated = 0;
      n_corrupted = 0;
      n_corrupt_drops = 0;
    }
  in
  t.ser_done <- (fun () -> ser_complete t);
  t

let send t ~size payload =
  if size <= 0 then invalid_arg "Link.send: size must be positive";
  (match t.link_mtu with
  | Some m when size > m ->
    invalid_arg
      (Printf.sprintf "Link.send: size %d exceeds MTU %d on %s" size m
         t.link_name)
  | Some _ | None -> ());
  if not t.up then begin
    (* A downed link drops everything silently — no error propagates to
       the sender, exactly like a transmit onto a dead interface. *)
    t.n_down_drops <- t.n_down_drops + 1;
    obs_emit t Obs.Event.Drop ~size;
    false
  end
  else
  let overflow =
    match t.txq_capacity_bytes with
    | Some cap -> Fifo_queue.bytes t.txq + size > cap
    | None -> false
  in
  if overflow then begin
    t.n_txq_drops <- t.n_txq_drops + 1;
    obs_emit t Obs.Event.Txq_drop ~size;
    false
  end
  else begin
    Fifo_queue.push t.txq ~size payload;
    if not t.serializing then start_serialize t;
    true
  end

let name t = t.link_name
let mtu t = t.link_mtu
let rate_bps t = t.rate

let set_rate_bps t rate =
  if rate <= 0.0 then invalid_arg "Link.set_rate_bps: rate must be > 0";
  t.rate <- rate

let is_up t = t.up

let on_carrier t f = t.carrier_watchers <- t.carrier_watchers @ [ f ]

let set_up t up =
  if up <> t.up then begin
    t.up <- up;
    if not up then begin
      (* Cable pull: everything waiting in the transmit queue is gone.
         The packet being serialized (if any) is dropped when its
         serialization completes, and in-flight packets are dropped at
         their arrival instant. *)
      Fifo_queue.iter t.txq (fun _ ~size ->
          t.n_down_drops <- t.n_down_drops + 1;
          obs_emit t Obs.Event.Drop ~size);
      Fifo_queue.clear t.txq
    end;
    obs_emit t
      (if up then Obs.Event.Channel_up else Obs.Event.Channel_down)
      ~size:(-1);
    List.iter (fun f -> f ~up) t.carrier_watchers
  end

let loss_process t = t.loss
let set_loss t loss = t.loss <- loss
let impairments t = t.impair
let set_impairments t impair = t.impair <- impair

let queue_bytes t = Fifo_queue.bytes t.txq
let queue_packets t = Fifo_queue.length t.txq
let busy t = t.serializing
let sent_packets t = t.n_sent
let sent_bytes t = t.b_sent
let delivered_packets t = t.n_delivered
let delivered_bytes t = t.b_delivered
let lost_packets t = t.n_lost
let txq_drops t = t.n_txq_drops
let down_drops t = t.n_down_drops
let reordered_packets t = t.n_reordered
let duplicated_packets t = t.n_duplicated
let corrupted_packets t = t.n_corrupted
let corrupt_drops t = t.n_corrupt_drops
