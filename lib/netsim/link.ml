module Obs = Stripe_obs

type 'a t = {
  sim : Sim.t;
  link_name : string;
  mutable rate : float;
  prop_delay : float;
  jitter : (Rng.t -> float) option;
  rng : Rng.t;
  mutable loss : Loss.t;
  mutable impair : Impair.t;
  corrupt : ('a -> 'a option) option;
  txq_capacity_bytes : int option;
  link_mtu : int option;
  obs_channel : int;
  sink : Obs.Sink.t;
  deliver : 'a -> unit;
  txq : (int * 'a) Queue.t;
  mutable txq_bytes : int;
  mutable serializing : bool;
  mutable last_arrival : float;
  mutable up : bool;
  mutable carrier_watchers : (up:bool -> unit) list;
  mutable n_sent : int;
  mutable b_sent : int;
  mutable n_delivered : int;
  mutable b_delivered : int;
  mutable n_lost : int;
  mutable n_txq_drops : int;
  mutable n_down_drops : int;
  mutable n_reordered : int;
  mutable n_duplicated : int;
  mutable n_corrupted : int;
  mutable n_corrupt_drops : int;
}

let create sim ?(name = "link") ~rate_bps ~prop_delay ?jitter ?rng ?loss
    ?(impair = Impair.none) ?corrupt ?txq_capacity_bytes ?mtu ?(channel = -1)
    ?(sink = Obs.Sink.null) ~deliver () =
  if rate_bps <= 0.0 then invalid_arg "Link.create: rate_bps must be > 0";
  if prop_delay < 0.0 then invalid_arg "Link.create: negative prop_delay";
  {
    sim;
    link_name = name;
    rate = rate_bps;
    prop_delay;
    jitter;
    rng = (match rng with Some r -> r | None -> Rng.create 0);
    loss = (match loss with Some l -> l | None -> Loss.none ());
    impair;
    corrupt;
    txq_capacity_bytes;
    link_mtu = mtu;
    obs_channel = channel;
    sink;
    deliver;
    txq = Queue.create ();
    txq_bytes = 0;
    serializing = false;
    last_arrival = 0.0;
    up = true;
    carrier_watchers = [];
    n_sent = 0;
    b_sent = 0;
    n_delivered = 0;
    b_delivered = 0;
    n_lost = 0;
    n_txq_drops = 0;
    n_down_drops = 0;
    n_reordered = 0;
    n_duplicated = 0;
    n_corrupted = 0;
    n_corrupt_drops = 0;
  }

let obs_emit t kind ~size =
  if Obs.Sink.active t.sink then
    Obs.Sink.emit t.sink
      (Obs.Event.v ~channel:t.obs_channel ~size ~time:(Sim.now t.sim) kind)

let deliver_at t ~size ~at payload =
  Sim.schedule t.sim ~at (fun () ->
      if not t.up then begin
        (* Lost in flight: the link died under the packet. *)
        t.n_down_drops <- t.n_down_drops + 1;
        obs_emit t Obs.Event.Drop ~size
      end
      else begin
        t.n_delivered <- t.n_delivered + 1;
        t.b_delivered <- t.b_delivered + size;
        obs_emit t Obs.Event.Arrival ~size;
        t.deliver payload
      end)

(* Schedule one arrival (propagation + jitter, clamped to preserve FIFO),
   applying the impairment profile: a reordered copy gets an extra
   unclamped delay (and leaves [last_arrival] alone, so later packets may
   overtake it); a corrupted copy is either discarded at the receiving
   interface (the simulated CRC — corruption below the protocol is loss)
   or, when the [corrupt] hook chooses, delivered mangled. *)
let schedule_copy t ~size payload =
  let imp = t.impair in
  let extra = match t.jitter with None -> 0.0 | Some j -> max 0.0 (j t.rng) in
  let base = Sim.now t.sim +. t.prop_delay +. extra in
  let arrival =
    if imp.Impair.reorder_p > 0.0 && Rng.bernoulli t.rng ~p:imp.Impair.reorder_p
    then begin
      t.n_reordered <- t.n_reordered + 1;
      base +. Rng.float t.rng imp.Impair.reorder_window
    end
    else begin
      let a = max base t.last_arrival in
      t.last_arrival <- a;
      a
    end
  in
  let corrupted =
    imp.Impair.corrupt_p > 0.0 && Rng.bernoulli t.rng ~p:imp.Impair.corrupt_p
  in
  if not corrupted then deliver_at t ~size ~at:arrival payload
  else begin
    t.n_corrupted <- t.n_corrupted + 1;
    let damaged = match t.corrupt with None -> None | Some f -> f payload in
    match damaged with
    | Some payload' -> deliver_at t ~size ~at:arrival payload'
    | None ->
      (* The receiving interface's CRC catches the damage: the packet is
         discarded on arrival, indistinguishable from wire loss to the
         layers above. *)
      t.n_corrupt_drops <- t.n_corrupt_drops + 1;
      Sim.schedule t.sim ~at:arrival (fun () ->
          obs_emit t Obs.Event.Corrupt_discard ~size)
  end

(* Start serializing the packet at the head of the transmit queue. When
   serialization finishes, schedule the arrival — twice under a
   duplication impairment — and start on the next queued packet. *)
let rec start_serialize t =
  match Queue.take_opt t.txq with
  | None -> t.serializing <- false
  | Some (size, payload) ->
    t.serializing <- true;
    t.txq_bytes <- t.txq_bytes - size;
    obs_emit t Obs.Event.Dequeue ~size;
    let ser_time = float_of_int (size * 8) /. t.rate in
    Sim.schedule_after t.sim ~delay:ser_time (fun () ->
        t.n_sent <- t.n_sent + 1;
        t.b_sent <- t.b_sent + size;
        if not t.up then begin
          (* The carrier vanished while the packet was serializing. *)
          t.n_down_drops <- t.n_down_drops + 1;
          obs_emit t Obs.Event.Drop ~size
        end
        else if Loss.drop t.loss t.rng then begin
          t.n_lost <- t.n_lost + 1;
          obs_emit t Obs.Event.Drop ~size
        end
        else begin
          schedule_copy t ~size payload;
          if
            t.impair.Impair.dup_p > 0.0
            && Rng.bernoulli t.rng ~p:t.impair.Impair.dup_p
          then begin
            t.n_duplicated <- t.n_duplicated + 1;
            schedule_copy t ~size payload
          end
        end;
        start_serialize t)

let send t ~size payload =
  if size <= 0 then invalid_arg "Link.send: size must be positive";
  (match t.link_mtu with
  | Some m when size > m ->
    invalid_arg
      (Printf.sprintf "Link.send: size %d exceeds MTU %d on %s" size m
         t.link_name)
  | Some _ | None -> ());
  if not t.up then begin
    (* A downed link drops everything silently — no error propagates to
       the sender, exactly like a transmit onto a dead interface. *)
    t.n_down_drops <- t.n_down_drops + 1;
    obs_emit t Obs.Event.Drop ~size;
    false
  end
  else
  let overflow =
    match t.txq_capacity_bytes with
    | Some cap -> t.txq_bytes + size > cap
    | None -> false
  in
  if overflow then begin
    t.n_txq_drops <- t.n_txq_drops + 1;
    obs_emit t Obs.Event.Txq_drop ~size;
    false
  end
  else begin
    Queue.add (size, payload) t.txq;
    t.txq_bytes <- t.txq_bytes + size;
    if not t.serializing then start_serialize t;
    true
  end

let name t = t.link_name
let mtu t = t.link_mtu
let rate_bps t = t.rate

let set_rate_bps t rate =
  if rate <= 0.0 then invalid_arg "Link.set_rate_bps: rate must be > 0";
  t.rate <- rate

let is_up t = t.up

let on_carrier t f = t.carrier_watchers <- t.carrier_watchers @ [ f ]

let set_up t up =
  if up <> t.up then begin
    t.up <- up;
    if not up then begin
      (* Cable pull: everything waiting in the transmit queue is gone.
         The packet being serialized (if any) is dropped when its
         serialization completes, and in-flight packets are dropped at
         their arrival instant. *)
      Queue.iter
        (fun (size, _) ->
          t.n_down_drops <- t.n_down_drops + 1;
          obs_emit t Obs.Event.Drop ~size)
        t.txq;
      Queue.clear t.txq;
      t.txq_bytes <- 0
    end;
    obs_emit t
      (if up then Obs.Event.Channel_up else Obs.Event.Channel_down)
      ~size:(-1);
    List.iter (fun f -> f ~up) t.carrier_watchers
  end

let loss_process t = t.loss
let set_loss t loss = t.loss <- loss
let impairments t = t.impair
let set_impairments t impair = t.impair <- impair

let queue_bytes t = t.txq_bytes
let queue_packets t = Queue.length t.txq
let busy t = t.serializing
let sent_packets t = t.n_sent
let sent_bytes t = t.b_sent
let delivered_packets t = t.n_delivered
let delivered_bytes t = t.b_delivered
let lost_packets t = t.n_lost
let txq_drops t = t.n_txq_drops
let down_drops t = t.n_down_drops
let reordered_packets t = t.n_reordered
let duplicated_packets t = t.n_duplicated
let corrupted_packets t = t.n_corrupted
let corrupt_drops t = t.n_corrupt_drops
