(* Fault injection: scheduled and randomized link events, driven through
   the simulator clock against Link.t values. The module is generic in
   the link payload type and knows nothing about the protocol stack; the
   sender-crash hook is a plain closure so the striping layers above can
   wire their own reboot procedure in. *)

type event =
  | Down
  | Up
  | Rate of float
  | Burst_loss of { loss : Loss.t; duration : float }

type action = { at : float; channel : int; event : event }

let event_name = function
  | Down -> "down"
  | Up -> "up"
  | Rate r -> Printf.sprintf "rate=%g" r
  | Burst_loss { duration; _ } -> Printf.sprintf "burst(%gs)" duration

let pp_action fmt a =
  Format.fprintf fmt "%g: ch%d %s" a.at a.channel (event_name a.event)

let inject sim link ~at event =
  match event with
  | Down -> Sim.schedule sim ~at (fun () -> Link.set_up link false)
  | Up -> Sim.schedule sim ~at (fun () -> Link.set_up link true)
  | Rate r ->
    if r <= 0.0 then invalid_arg "Fault.inject: rate must be > 0";
    Sim.schedule sim ~at (fun () -> Link.set_rate_bps link r)
  | Burst_loss { loss; duration } ->
    if duration < 0.0 then invalid_arg "Fault.inject: negative duration";
    Sim.schedule sim ~at (fun () ->
        let previous = Link.loss_process link in
        Link.set_loss link loss;
        Sim.schedule_after sim ~delay:duration (fun () ->
            Link.set_loss link previous))

let apply sim ~links schedule =
  List.iter
    (fun { at; channel; event } ->
      if channel < 0 || channel >= Array.length links then
        invalid_arg
          (Printf.sprintf "Fault.apply: channel %d out of range" channel);
      inject sim links.(channel) ~at event)
    schedule

let down_up sim link ~down_at ~up_at =
  if up_at < down_at then invalid_arg "Fault.down_up: up_at before down_at";
  inject sim link ~at:down_at Down;
  inject sim link ~at:up_at Up

let flap sim link ~first_down ~period ~down_for ~until_ =
  if period <= 0.0 then invalid_arg "Fault.flap: period must be > 0";
  if down_for <= 0.0 || down_for >= period then
    invalid_arg "Fault.flap: down_for must lie within the period";
  let t = ref first_down in
  while !t < until_ do
    down_up sim link ~down_at:!t ~up_at:(!t +. down_for);
    t := !t +. period
  done

let crash sim ~at reboot = Sim.schedule sim ~at reboot

(* Alternating exponential up/down holding times per channel: the
   standard two-state availability model. Every draw comes from [rng], so
   one seed reproduces the whole schedule. *)
let random_schedule ~rng ~n_channels ~horizon ~mtbf ~mttr =
  if n_channels <= 0 then
    invalid_arg "Fault.random_schedule: n_channels must be positive";
  if horizon <= 0.0 then
    invalid_arg "Fault.random_schedule: horizon must be positive";
  if mtbf <= 0.0 || mttr <= 0.0 then
    invalid_arg "Fault.random_schedule: mtbf and mttr must be positive";
  let actions = ref [] in
  for channel = 0 to n_channels - 1 do
    let t = ref (Rng.exponential rng ~mean:mtbf) in
    let up = ref true in
    while !t < horizon do
      let event = if !up then Down else Up in
      actions := { at = !t; channel; event } :: !actions;
      up := not !up;
      let hold = Rng.exponential rng ~mean:(if !up then mtbf else mttr) in
      t := !t +. hold
    done;
    (* Never leave a channel down past the horizon: the schedule models
       transient faults, and soak tests assert recovery after it ends. *)
    if not !up then actions := { at = horizon; channel; event = Up } :: !actions
  done;
  List.sort (fun a b -> compare (a.at, a.channel) (b.at, b.channel)) !actions

(* Spec grammar (for --fault command-line flags):

     CH:EVENT@T[,EVENT@T...]

   with EVENT one of
     down           carrier loss
     up             carrier recovery
     rate=BPS       set the service rate
     burst=P/DUR    Bernoulli loss probability P for DUR seconds  *)
let parse_spec s =
  let ( let* ) = Result.bind in
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let parse_float what v =
    match float_of_string_opt v with
    | Some f -> Ok f
    | None -> fail "bad %s %S in fault spec %S" what v s
  in
  let parse_event tok =
    match String.index_opt tok '@' with
    | None -> fail "fault event %S lacks an @TIME in %S" tok s
    | Some i ->
      let lhs = String.sub tok 0 i in
      let* at = parse_float "time" (String.sub tok (i + 1) (String.length tok - i - 1)) in
      let name, arg =
        match String.index_opt lhs '=' with
        | None -> (lhs, None)
        | Some j ->
          ( String.sub lhs 0 j,
            Some (String.sub lhs (j + 1) (String.length lhs - j - 1)) )
      in
      let* event =
        match (name, arg) with
        | "down", None -> Ok Down
        | "up", None -> Ok Up
        | "rate", Some v ->
          let* r = parse_float "rate" v in
          if r <= 0.0 then fail "rate must be > 0 in %S" s else Ok (Rate r)
        | "burst", Some v -> (
          match String.split_on_char '/' v with
          | [ p; dur ] ->
            let* p = parse_float "burst probability" p in
            let* duration = parse_float "burst duration" dur in
            if p < 0.0 || p > 1.0 then
              fail "burst probability %g not in [0,1] in %S" p s
            else if duration < 0.0 then fail "negative burst duration in %S" s
            else Ok (Burst_loss { loss = Loss.bernoulli ~p; duration })
          | _ -> fail "burst needs P/DURATION in %S" s)
        | _ -> fail "unknown fault event %S in %S" lhs s
      in
      Ok (at, event)
  in
  match String.index_opt s ':' with
  | None -> fail "fault spec %S lacks a CH: prefix" s
  | Some i -> (
    let ch = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    match int_of_string_opt ch with
    | None -> fail "bad channel %S in fault spec %S" ch s
    | Some channel ->
      if channel < 0 then fail "negative channel in fault spec %S" s
      else
        let rec collect acc = function
          | [] -> Ok (List.rev acc)
          | tok :: rest ->
            let* at, event = parse_event (String.trim tok) in
            collect ({ at; channel; event } :: acc) rest
        in
        collect [] (String.split_on_char ',' rest))
