(* Fault injection: scheduled and randomized link events, driven through
   the simulator clock against Link.t values. The module is generic in
   the link payload type and knows nothing about the protocol stack; the
   sender-crash hook is a plain closure so the striping layers above can
   wire their own reboot procedure in. *)

type event =
  | Down
  | Up
  | Rate of float
  | Burst_loss of { loss : Loss.t; duration : float }

type action = { at : float; channel : int; event : event }

let event_name = function
  | Down -> "down"
  | Up -> "up"
  | Rate r -> Printf.sprintf "rate=%g" r
  | Burst_loss { duration; _ } -> Printf.sprintf "burst(%gs)" duration

let pp_action fmt a =
  Format.fprintf fmt "%g: ch%d %s" a.at a.channel (event_name a.event)

let inject sim link ~at event =
  match event with
  | Down -> Sim.schedule sim ~at (fun () -> Link.set_up link false)
  | Up -> Sim.schedule sim ~at (fun () -> Link.set_up link true)
  | Rate r ->
    if r <= 0.0 then invalid_arg "Fault.inject: rate must be > 0";
    Sim.schedule sim ~at (fun () -> Link.set_rate_bps link r)
  | Burst_loss { loss; duration } ->
    if duration < 0.0 then invalid_arg "Fault.inject: negative duration";
    Sim.schedule sim ~at (fun () ->
        let previous = Link.loss_process link in
        Link.set_loss link loss;
        Sim.schedule_after sim ~delay:duration (fun () ->
            Link.set_loss link previous))

let apply sim ~links schedule =
  List.iter
    (fun { at; channel; event } ->
      if channel < 0 || channel >= Array.length links then
        invalid_arg
          (Printf.sprintf "Fault.apply: channel %d out of range" channel);
      inject sim links.(channel) ~at event)
    schedule

let down_up sim link ~down_at ~up_at =
  if up_at < down_at then invalid_arg "Fault.down_up: up_at before down_at";
  inject sim link ~at:down_at Down;
  inject sim link ~at:up_at Up

let flap sim link ~first_down ~period ~down_for ~until_ =
  if period <= 0.0 then invalid_arg "Fault.flap: period must be > 0";
  if down_for <= 0.0 || down_for >= period then
    invalid_arg "Fault.flap: down_for must lie within the period";
  let t = ref first_down in
  while !t < until_ do
    down_up sim link ~down_at:!t ~up_at:(!t +. down_for);
    t := !t +. period
  done

let crash sim ~at reboot = Sim.schedule sim ~at reboot

(* Alternating exponential up/down holding times per channel: the
   standard two-state availability model. Every draw comes from [rng], so
   one seed reproduces the whole schedule. *)
let random_schedule ~rng ~n_channels ~horizon ~mtbf ~mttr =
  if n_channels <= 0 then
    invalid_arg "Fault.random_schedule: n_channels must be positive";
  if horizon <= 0.0 then
    invalid_arg "Fault.random_schedule: horizon must be positive";
  if mtbf <= 0.0 || mttr <= 0.0 then
    invalid_arg "Fault.random_schedule: mtbf and mttr must be positive";
  let actions = ref [] in
  for channel = 0 to n_channels - 1 do
    let t = ref (Rng.exponential rng ~mean:mtbf) in
    let up = ref true in
    while !t < horizon do
      let event = if !up then Down else Up in
      actions := { at = !t; channel; event } :: !actions;
      up := not !up;
      let hold = Rng.exponential rng ~mean:(if !up then mtbf else mttr) in
      t := !t +. hold
    done;
    (* Never leave a channel down past the horizon: the schedule models
       transient faults, and soak tests assert recovery after it ends. *)
    if not !up then actions := { at = horizon; channel; event = Up } :: !actions
  done;
  List.sort (fun a b -> compare (a.at, a.channel) (b.at, b.channel)) !actions

(* A shared-risk group: channels riding one physical facility (conduit,
   wavelength, line card), so one failure takes them all down and one
   repair brings them all back. *)

let group_down_up sim ~links ~channels ~down_at ~up_at =
  if up_at < down_at then
    invalid_arg "Fault.group_down_up: up_at before down_at";
  List.iter
    (fun c ->
      if c < 0 || c >= Array.length links then
        invalid_arg
          (Printf.sprintf "Fault.group_down_up: channel %d out of range" c);
      down_up sim links.(c) ~down_at ~up_at)
    channels

let random_group_schedule ~rng ~channels ~horizon ~mtbf ~mttr =
  if channels = [] then
    invalid_arg "Fault.random_group_schedule: empty group";
  if List.exists (fun c -> c < 0) channels then
    invalid_arg "Fault.random_group_schedule: negative channel";
  if horizon <= 0.0 then
    invalid_arg "Fault.random_group_schedule: horizon must be positive";
  if mtbf <= 0.0 || mttr <= 0.0 then
    invalid_arg "Fault.random_group_schedule: mtbf and mttr must be positive";
  (* One two-state availability process drives the whole group: every
     member fails and recovers at the same instants — the correlation
     that per-channel schedules cannot express. *)
  let actions = ref [] in
  let emit at event =
    List.iter (fun channel -> actions := { at; channel; event } :: !actions)
      channels
  in
  let t = ref (Rng.exponential rng ~mean:mtbf) in
  let up = ref true in
  while !t < horizon do
    emit !t (if !up then Down else Up);
    up := not !up;
    t := !t +. Rng.exponential rng ~mean:(if !up then mtbf else mttr)
  done;
  if not !up then emit horizon Up;
  List.sort (fun a b -> compare (a.at, a.channel) (b.at, b.channel)) !actions

(* Spec grammar (for --fault command-line flags):

     CH:EVENT@T[,EVENT@T...]

   with EVENT one of
     down           carrier loss
     up             carrier recovery
     rate=BPS       set the service rate
     burst=P/DUR    Bernoulli loss probability P for DUR seconds  *)
let parse_spec s =
  let open Spec in
  let c = ctx ~kind:"fault" s in
  let parse_event c tok =
    let* lhs, at = timed c tok in
    let* event =
      match kv lhs with
      | "down", None -> Ok Down
      | "up", None -> Ok Up
      | "rate", Some v ->
        let* r = positive c ~what:"rate" v in
        Ok (Rate r)
      | "burst", Some v ->
        let* p, dur = pair c ~what:"burst" ~sep:'/' v in
        let* p = prob c ~what:"burst" p in
        let* duration = non_negative c ~what:"burst duration" dur in
        Ok (Burst_loss { loss = Loss.bernoulli ~p; duration })
      | _ -> errf c "unknown fault event %S (want down, up, rate=, burst=)" lhs
    in
    Ok (at, event)
  in
  let* channel, rest = channel_prefix c in
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | (c, tok) :: rest ->
      let* at, event = parse_event c tok in
      collect ({ at; channel; event } :: acc) rest
  in
  collect [] (located c rest)
