(** Shared scanner for the compact command-line spec grammars.

    {!Fault.parse_spec}, {!Impair.parse_spec}, and {!Chaos.parse_spec}
    all speak dialects of one shape — [CH:ITEM,ITEM,...] with
    [NAME=VALUE] items, [@TIME] suffixes, and [A/B] argument pairs.
    These are the shared pieces; each parser keeps only its own
    vocabulary. Every error message names the offending fragment, the
    spec kind, and the complete spec string — and, when the parser
    walks items through {!located}, the character position of the
    offending item — so a mistyped flag is diagnosable from the
    message alone. *)

type ctx
(** A spec being parsed: its kind (for messages, e.g. ["fault"]), the
    full source string, and optionally the character position the
    parser is currently at. *)

val ctx : kind:string -> string -> ctx

val at : ctx -> int -> ctx
(** The same ctx positioned at character offset [pos] of the source;
    subsequent {!errf} messages carry [" at char POS"]. *)

val ( let* ) :
  ('a, 'e) result -> ('a -> ('b, 'e) result) -> ('b, 'e) result

val errf : ctx -> ('a, unit, string, ('b, string) result) format4 -> 'a
(** Build an [Error] whose message ends with [" in KIND spec SPEC"] —
    or [" at char POS in KIND spec SPEC"] when the ctx is positioned
    ({!at}, {!located}). *)

val float_ : ctx -> what:string -> string -> (float, string) result
(** A finite float; [what] names the field in the error. *)

val positive : ctx -> what:string -> string -> (float, string) result
val non_negative : ctx -> what:string -> string -> (float, string) result

val prob : ctx -> what:string -> string -> (float, string) result
(** A probability in [[0,1]]. *)

val int_ : ctx -> what:string -> string -> (int, string) result

val channel : ctx -> what:string -> string -> (int, string) result
(** A non-negative integer. *)

val channel_prefix : ctx -> (int * string, string) result
(** Split the spec's leading [CH:] off: the channel number and the
    remainder after the colon. *)

val items : string -> string list
(** Comma-split and trim. *)

val located : ctx -> string -> (ctx * string) list
(** Like {!items}, but each trimmed item comes with a ctx positioned at
    the item's first non-blank character. The string must be a suffix
    of the ctx's source (the whole spec, or the remainder returned by
    {!channel_prefix}), so positions index the string the user typed. *)

val kv : string -> string * string option
(** Split [NAME=VALUE] at the first [=]; [None] when there is none. *)

val timed : ctx -> string -> (string * float, string) result
(** Split [ITEM@TIME] at the last [@]: the item and its (non-negative)
    time. *)

val pair :
  ctx -> what:string -> sep:char -> string -> (string * string, string) result
(** Split a two-field argument like [P/DUR] at [sep]. *)
