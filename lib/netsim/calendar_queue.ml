(* Calendar queue (R. Brown, CACM 1988): a hashed ring of time-sorted
   buckets, O(1) amortized add/pop for the event populations simulations
   generate — many events clustered a bounded distance into the future
   (link serializations, propagation delays, pacing timers).

   An event at time [t] lives in bucket [floor (t / width) mod nbuckets].
   Popping scans the ring from the current virtual bucket [gidx]
   (= floor (scan time / width)): a bucket's minimum fires only if its
   own virtual bucket index is at or before the scan's
   ([vbucket t <= gidx], the float-exact form of "inside the current
   year slice"); otherwise the event belongs to a later lap around the
   ring and the scan moves on. A full fruitless rotation
   (all events far in the future) falls back to a direct minimum search
   that repositions the scan — correctness never depends on the width
   heuristics.

   Buckets are struct-of-arrays (unboxed float times), sorted descending
   so the earliest entry pops off the end in O(1); inserts memmove within
   a bucket, which resizing keeps a few entries deep. The calendar doubles
   when occupancy exceeds two entries per bucket and halves below one per
   two buckets, re-deriving the bucket width from the live event
   population each time.

   Determinism contract (checked against {!Eventq} by property test):
   same-time events pop in insertion order. Equal times always hash to
   the same bucket, so the global (time, seq) order reduces to the
   intra-bucket sort. *)

type 'a t = {
  mutable nbuckets : int;  (* power of two *)
  mutable mask : int;
  mutable width : float;
  mutable btimes : float array array;
  mutable bseqs : int array array;
  mutable bvals : 'a array array;
  mutable blens : int array;
  mutable size : int;
  mutable next_seq : int;
  mutable overload_stamp : int;
      (* Population size at the last overload-triggered re-derivation
         (see [add]); gates the next one behind a population doubling so
         degenerate populations (all events simultaneous) cannot thrash
         O(n) rehashes on every insert. *)
  mutable gidx : int;
      (* Virtual bucket index of the pop scan: bucket [gidx land mask],
         year bound [(gidx + 1) * width]. Meaningful only when
         [positioned]. *)
  mutable positioned : bool;
  tmp_time : float array;
      (* Staging cell for [bucket_insert]'s time argument: a float passed
         to a non-inlined function boxes at the call boundary, a float
         array store does not. *)
      (* False when the scan must re-find the global minimum before the
         next pop: after a clear/resize, when the queue was empty, or
         when an insertion landed before the scan's current year. *)
}

let dummy : unit -> 'a = fun () -> Obj.magic ()

let initial_buckets = 16

let make_buckets n =
  ( Array.make n [||],
    Array.make n [||],
    Array.make n [||],
    Array.make n 0 )

let create () =
  let btimes, bseqs, bvals, blens = make_buckets initial_buckets in
  {
    nbuckets = initial_buckets;
    mask = initial_buckets - 1;
    width = 1.0;
    btimes;
    bseqs;
    bvals;
    blens;
    size = 0;
    next_seq = 0;
    overload_stamp = 0;
    gidx = 0;
    positioned = false;
    tmp_time = [| 0.0 |];
  }

let is_empty q = q.size = 0

let length q = q.size

(* Virtual (unwrapped) bucket index of time [t]. The width floor chosen
   at resize keeps [t /. width] well below 2^52, so the floor is exact
   and the year arithmetic in [pop] cannot misplace an event. *)
let vbucket q t = int_of_float (t /. q.width)

(* --- bucket primitives ------------------------------------------------ *)

let bucket_grow q b =
  let cap = Array.length q.bvals.(b) in
  if q.blens.(b) = cap then begin
    let ncap = if cap = 0 then 4 else 2 * cap in
    let times = Array.make ncap 0.0 in
    let seqs = Array.make ncap 0 in
    let vals = Array.make ncap (dummy ()) in
    Array.blit q.btimes.(b) 0 times 0 cap;
    Array.blit q.bseqs.(b) 0 seqs 0 cap;
    Array.blit q.bvals.(b) 0 vals 0 cap;
    q.btimes.(b) <- times;
    q.bseqs.(b) <- seqs;
    q.bvals.(b) <- vals
  end

(* Insert into bucket [b], keeping it sorted descending by (time, seq):
   the earliest entry stays at index [len - 1]. The time is taken from
   [q.tmp_time.(0)] (see its comment). *)
let bucket_insert q b ~seq v =
  let time = q.tmp_time.(0) in
  bucket_grow q b;
  let times = q.btimes.(b) and seqs = q.bseqs.(b) and vals = q.bvals.(b) in
  let len = q.blens.(b) in
  (* Entries strictly after (time, seq) shift one slot toward the end. *)
  let j = ref len in
  while
    !j > 0
    && not
         (times.(!j - 1) > time
         || (times.(!j - 1) = time && seqs.(!j - 1) > seq))
  do
    decr j
  done;
  if !j < len then begin
    Array.blit times !j times (!j + 1) (len - !j);
    Array.blit seqs !j seqs (!j + 1) (len - !j);
    Array.blit vals !j vals (!j + 1) (len - !j)
  end;
  times.(!j) <- time;
  seqs.(!j) <- seq;
  vals.(!j) <- v;
  q.blens.(b) <- len + 1

(* Remove and return the earliest entry of (non-empty) bucket [b]. *)
let bucket_take q b =
  let len = q.blens.(b) - 1 in
  let v = q.bvals.(b).(len) in
  q.bvals.(b).(len) <- dummy ();
  q.blens.(b) <- len;
  q.size <- q.size - 1;
  v

(* --- sizing ----------------------------------------------------------- *)

(* Re-derive the bucket width from the live population: ~3 mean
   inter-event gaps per bucket, where the mean gap is measured over the
   densest leading quantile of a sorted time sample rather than the full
   [tmin, tmax] span. The classic span rule (3 * span / size, Brown
   1988) assumes a roughly unimodal population; a churned fleet instead
   holds a dense cluster of imminent wire events plus a long sparse tail
   of lifetime timers spread over seconds, and a span-derived width
   lumps the whole cluster into one or two buckets — every insert then
   pays an O(cluster) scan-and-memmove, which is the 2x calendar-vs-heap
   churn regression. The first quantile probe (q25, then q50/q75/q100
   for degenerate prefixes) measures the gap scale where the pop scan
   actually works; for unimodal populations the q100 fallback reduces
   exactly to the classic rule. Clamped so [t / width] stays exactly
   representable (<= 2^40) for every queued time. Fully degenerate
   populations (all events simultaneous) keep the previous width —
   bucketing quality is then irrelevant anyway. *)
let derive_width q ~tmin ~tmax ~sample ~n =
  let w =
    if tmax > tmin && q.size > 1 && n > 1 then begin
      let rec probe k =
        let extent = sample.((n - 1) * k / 4) -. tmin in
        if extent > 0.0 then
          (* ~k/4 of the population lies within [extent] of the head, so
             the head-region mean gap is extent / (k/4 * size). *)
          3.0 *. extent /. (float_of_int k /. 4.0 *. float_of_int q.size)
        else if k < 4 then probe (k + 1)
        else q.width
      in
      probe 1
    end
    else q.width
  in
  let floor_w = Float.max 1e-12 (Float.max tmax (-.tmin) /. 1.099511627776e12)
  (* 2^40 *) in
  Float.max w floor_w

let resize q nbuckets' =
  let old_btimes = q.btimes
  and old_bseqs = q.bseqs
  and old_bvals = q.bvals
  and old_blens = q.blens
  and old_n = q.nbuckets in
  (* Population bounds plus a deterministic stride sample (~256 times)
     for the quantile width derivation. *)
  let tmin = ref infinity and tmax = ref neg_infinity in
  let stride = 1 + (q.size / 256) in
  let sample = Array.make (if q.size = 0 then 1 else 1 + ((q.size - 1) / stride)) 0.0 in
  let si = ref 0 and seen = ref 0 in
  for b = 0 to old_n - 1 do
    for i = 0 to old_blens.(b) - 1 do
      let t = old_btimes.(b).(i) in
      if t < !tmin then tmin := t;
      if t > !tmax then tmax := t;
      if !seen mod stride = 0 && !si < Array.length sample then begin
        sample.(!si) <- t;
        incr si
      end;
      incr seen
    done
  done;
  let sample = Array.sub sample 0 !si in
  Array.sort Float.compare sample;
  let btimes, bseqs, bvals, blens = make_buckets nbuckets' in
  q.nbuckets <- nbuckets';
  q.mask <- nbuckets' - 1;
  q.width <- derive_width q ~tmin:!tmin ~tmax:!tmax ~sample ~n:!si;
  q.btimes <- btimes;
  q.bseqs <- bseqs;
  q.bvals <- bvals;
  q.blens <- blens;
  for b = 0 to old_n - 1 do
    for i = 0 to old_blens.(b) - 1 do
      let dst = vbucket q old_btimes.(b).(i) land q.mask in
      q.tmp_time.(0) <- old_btimes.(b).(i);
      bucket_insert q dst ~seq:old_bseqs.(b).(i) old_bvals.(b).(i)
    done
  done;
  q.positioned <- false

(* --- main operations -------------------------------------------------- *)

let[@inline] add q ~time value =
  let seq = q.next_seq in
  q.next_seq <- seq + 1;
  let vb = vbucket q time in
  let b = vb land q.mask in
  q.tmp_time.(0) <- time;
  bucket_insert q b ~seq value;
  q.size <- q.size + 1;
  (* An event landing before the scan's current year start would be
     passed over by the year check: force a re-position. *)
  if q.positioned && vb < q.gidx then q.positioned <- false;
  if q.size > 2 * q.nbuckets then resize q (2 * q.nbuckets)
  else if q.blens.(b) >= 48 && q.size >= 2 * q.overload_stamp then begin
    (* Overload guard: a single bucket 24x over the two-per-bucket
       occupancy target means the event-time distribution drifted since
       the width was last derived (resizes only fire on population
       growth, not distribution change). Rehash at the same bucket count
       to re-derive; the [overload_stamp] doubling gate bounds the cost
       to O(n) amortized even when re-deriving cannot help. *)
    q.overload_stamp <- q.size;
    resize q q.nbuckets
  end

(* Point the scan at the bucket holding the global minimum. The queue
   must be non-empty. Equal minimum times share a bucket, so comparing
   times across buckets suffices; the intra-bucket order settles seq
   ties. *)
let reposition q =
  let best_b = ref (-1) and best_t = ref infinity in
  for b = 0 to q.nbuckets - 1 do
    let len = q.blens.(b) in
    if len > 0 && q.btimes.(b).(len - 1) < !best_t then begin
      best_t := q.btimes.(b).(len - 1);
      best_b := b
    end
  done;
  (* Rebase the virtual index on the minimum's own year so the year
     bounds line up with bucket contents again. *)
  q.gidx <- vbucket q !best_t;
  (* [vbucket] of the minimum can disagree with the bucket it physically
     lives in only if the width changed underneath it — it cannot, width
     only changes at resize which rehashes. Trust the scan position. *)
  q.positioned <- true

let peek_loop q =
  (* Find the bucket whose head fires next; returns the bucket index and
     leaves the scan positioned on it. The queue must be non-empty. *)
  if not q.positioned then reposition q;
  let result = ref (-1) in
  let steps = ref 0 in
  while !result < 0 do
    let b = q.gidx land q.mask in
    let len = q.blens.(b) in
    (* The head fires iff its own virtual bucket is the scan's (or an
       earlier one). Deciding with [vbucket] — the same truncated
       division that placed the event — keeps placement and firing
       exactly consistent; the once-obvious bound
       [t < (gidx + 1) * width] is NOT equivalent in floats: the
       multiplication can round below [t] for an event whose division
       truncated to [gidx], making the scan reject the true minimum as
       next-lap and fire a slightly later event from the next virtual
       bucket instead. *)
    if len > 0 && vbucket q q.btimes.(b).(len - 1) <= q.gidx then result := b
    else if !steps >= q.nbuckets then begin
      (* Full fruitless rotation: everything lives in later years. Jump
         straight to the global minimum. *)
      reposition q;
      let b = q.gidx land q.mask in
      result := b
    end
    else begin
      q.gidx <- q.gidx + 1;
      incr steps
    end
  done;
  !result

let peek_time q =
  if q.size = 0 then None
  else
    let b = peek_loop q in
    Some q.btimes.(b).(q.blens.(b) - 1)

let[@inline] peek_time_unsafe q =
  let b = peek_loop q in
  q.btimes.(b).(q.blens.(b) - 1)

let maybe_shrink q =
  if q.nbuckets > initial_buckets && 2 * q.size < q.nbuckets then
    resize q (q.nbuckets / 2)

let pop q =
  if q.size = 0 then None
  else begin
    let b = peek_loop q in
    let time = q.btimes.(b).(q.blens.(b) - 1) in
    let v = bucket_take q b in
    if q.size = 0 then q.positioned <- false else maybe_shrink q;
    Some (time, v)
  end

let pop_exn q =
  if q.size = 0 then invalid_arg "Calendar_queue.pop_exn: empty queue";
  let b = peek_loop q in
  let v = bucket_take q b in
  if q.size = 0 then q.positioned <- false else maybe_shrink q;
  v

let clear q =
  let btimes, bseqs, bvals, blens = make_buckets initial_buckets in
  q.nbuckets <- initial_buckets;
  q.mask <- initial_buckets - 1;
  q.width <- 1.0;
  q.btimes <- btimes;
  q.bseqs <- bseqs;
  q.bvals <- bvals;
  q.blens <- blens;
  q.size <- 0;
  q.gidx <- 0;
  q.positioned <- false
