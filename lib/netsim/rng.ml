(* SplitMix64. The state lives in an 8-byte buffer accessed through the
   unboxed [Bytes.{get,set}_int64_ne] primitives rather than a mutable
   [int64] field: a boxed state would allocate on every draw, and
   workload generators draw once per packet. With the small functions
   inlined, a draw is allocation-free; the sequences are bit-identical
   to the boxed implementation. *)

type t = { state : Bytes.t }

let golden_gamma = 0x9E3779B97F4A7C15L

let[@inline] mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let of_state s =
  let state = Bytes.create 8 in
  Bytes.set_int64_ne state 0 s;
  { state }

let create seed = of_state (mix64 (Int64.of_int seed))

let[@inline] bits64 t =
  let s = Int64.add (Bytes.get_int64_ne t.state 0) golden_gamma in
  Bytes.set_int64_ne t.state 0 s;
  mix64 s

let split t = of_state (bits64 t)

let stream ~seed index =
  if index < 0 then invalid_arg "Rng.stream: index must be non-negative";
  (* Two rounds of mix64 over (seed, index) in a golden-gamma Weyl
     sequence: stream [i] depends only on the pair, never on how many
     other streams were derived first, so shard [i] of a sharded run
     draws the same sequence no matter how many shards exist. The extra
     mix round decorrelates neighbouring indices, which differ by a
     single gamma increment before mixing. *)
  let base = mix64 (Int64.of_int seed) in
  let z = Int64.add base (Int64.mul (Int64.of_int (index + 1)) golden_gamma) in
  of_state (mix64 (mix64 z))

let[@inline] int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free for simulation purposes: modulo bias is negligible for
     the small bounds used here, but we mask to 62 bits to stay positive. *)
  Int64.to_int (Int64.logand (bits64 t) 0x3FFFFFFFFFFFFFFFL) mod n

let[@inline] float t x =
  if x < 0.0 then invalid_arg "Rng.float: bound must be non-negative";
  let u = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  u /. 9007199254740992.0 *. x

let[@inline] bool t = Int64.logand (bits64 t) 1L = 1L

let[@inline] bernoulli t ~p = float t 1.0 < p

let exponential t ~mean =
  let u = float t 1.0 in
  (* Avoid log 0. *)
  let u = if u <= 0.0 then 1e-300 else u in
  -.mean *. log u

let uniform t ~lo ~hi = lo +. float t (hi -. lo)

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
