(** Priority queue of timed events, keyed by simulated time.

    Ties are broken by insertion order so that events scheduled at the same
    instant fire in the order they were scheduled — this keeps simulations
    fully deterministic. Implemented as a growable binary heap in
    struct-of-arrays layout: the steady-state add/pop cycle allocates
    nothing, and popped slots are cleared so delivered values can be
    collected. See {!Calendar_queue} for the O(1)-amortized alternative
    with identical observable ordering. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int

val add : 'a t -> time:float -> 'a -> unit
(** [add q ~time v] inserts [v] to fire at [time]. Allocation-free except
    when the backing arrays grow. *)

val peek_time : 'a t -> float option
(** Earliest scheduled time, if any. *)

val peek_time_unsafe : 'a t -> float
(** Earliest scheduled time. The queue must be non-empty (unchecked):
    guard with {!is_empty}. Used by the hot loop to avoid the option. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event as [(time, value)]. *)

val pop_exn : 'a t -> 'a
(** Remove the earliest event and return its value without boxing a
    tuple or option; read the time first with {!peek_time_unsafe}.
    Raises [Invalid_argument] if the queue is empty. *)

val clear : 'a t -> unit
(** Drop all events and release the backing arrays. *)
