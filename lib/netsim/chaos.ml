(* Correlated fault storms and endpoint crash/restart schedules — the
   chaos engine's composition layer.

   A plan is a list of high-level actions (a storm over a shared-risk
   group of channels, an endpoint crash with a downtime, a deliberate
   monitor-violation injection); [apply] compiles it to primitive
   transitions on the simulator clock and hands each one to the caller's
   driver. The module knows nothing about bundles or pools: the driver
   record is the whole interface, so the same plan drives a
   [Bundle_pool] fleet, a [Stripe_layer] pair, or a test harness.

   Reproducibility is the point. Plans are either parsed from a spec
   string or drawn from a seeded [Rng], and [apply] numbers the
   primitive transitions in deterministic time order — so "seed S,
   event 17" pins a failure to one instant of one schedule. *)

type side = Tx | Rx

(* How a degrade action hurts its channel: the gray-failure palette
   (PROTOCOL.md §13). None of these kill the carrier — the channel
   stays in the rotation, just worse — which is exactly the regime the
   health engine exists to detect. *)
type degrade =
  | Loss_ramp of float
  | Gilbert_loss of float
  | Rate_collapse of float
  | Flap of float

type action =
  | Storm of { channels : int list; at : float; duration : float }
  | Crash of { side : side; bundle : int; at : float; downtime : float }
  | Violate of { bundle : int; at : float }
  | Degrade of { channel : int; kind : degrade; at : float; duration : float }

type driver = {
  set_channel_up : int -> bool -> unit;
  crash : side -> int -> unit;
  restart : side -> int -> unit;
  violate : int -> unit;
  set_loss : int -> Loss.t -> unit;
  scale_rate : int -> float -> unit;
}

let side_name = function Tx -> "tx" | Rx -> "rx"

let degrade_name = function
  | Loss_ramp _ -> "loss"
  | Gilbert_loss _ -> "gilbert"
  | Rate_collapse _ -> "rate"
  | Flap _ -> "flap"

let degrade_param = function
  | Loss_ramp p | Gilbert_loss p | Rate_collapse p | Flap p -> p

let pp_action fmt = function
  | Storm { channels; at; duration } ->
    Format.fprintf fmt "%g: storm ch[%s] for %gs" at
      (String.concat "+" (List.map string_of_int channels))
      duration
  | Crash { side; bundle; at; downtime } ->
    Format.fprintf fmt "%g: crash %s/%d for %gs" at (side_name side) bundle
      downtime
  | Violate { bundle; at } ->
    Format.fprintf fmt "%g: violate %d" at bundle
  | Degrade { channel; kind; at; duration } ->
    Format.fprintf fmt "%g: degrade ch%d %s=%g for %gs" at channel
      (degrade_name kind) (degrade_param kind) duration

(* One primitive transition of a compiled plan. *)
type transition = { at : float; what : string; fire : driver -> unit }

let compile actions =
  let ts = ref [] in
  let add at what fire = ts := { at; what; fire } :: !ts in
  List.iter
    (fun a ->
      match a with
      | Storm { channels; at; duration } ->
        if duration < 0.0 then invalid_arg "Chaos: negative storm duration";
        List.iter
          (fun c ->
            if c < 0 then invalid_arg "Chaos: negative storm channel";
            add at
              (Printf.sprintf "storm-down ch%d" c)
              (fun d -> d.set_channel_up c false);
            add (at +. duration)
              (Printf.sprintf "storm-up ch%d" c)
              (fun d -> d.set_channel_up c true))
          channels
      | Crash { side; bundle; at; downtime } ->
        if downtime < 0.0 then invalid_arg "Chaos: negative downtime";
        if bundle < 0 then invalid_arg "Chaos: negative bundle";
        add at
          (Printf.sprintf "crash %s/%d" (side_name side) bundle)
          (fun d -> d.crash side bundle);
        add (at +. downtime)
          (Printf.sprintf "restart %s/%d" (side_name side) bundle)
          (fun d -> d.restart side bundle)
      | Violate { bundle; at } ->
        if bundle < 0 then invalid_arg "Chaos: negative bundle";
        add at
          (Printf.sprintf "violate %d" bundle)
          (fun d -> d.violate bundle)
      | Degrade { channel = c; kind; at; duration } ->
        if c < 0 then invalid_arg "Chaos: negative degrade channel";
        if duration <= 0.0 then
          invalid_arg "Chaos: degrade duration must be positive";
        let label step = Printf.sprintf "degrade-%s ch%d %s" step c
            (degrade_name kind)
        in
        (match kind with
        | Loss_ramp p ->
          (* Escalating loss: the gray failure that starts as noise and
             ends as a storm. Four equal steps up to [p], then clear —
             each step is a fresh (stateless) Bernoulli process. *)
          let steps = 4 in
          for k = 1 to steps do
            let frac = float_of_int k /. float_of_int steps in
            add
              (at +. (duration *. float_of_int (k - 1) /. float_of_int steps))
              (label (Printf.sprintf "ramp%d" k))
              (fun d -> d.set_loss c (Loss.bernoulli ~p:(p *. frac)))
          done;
          add (at +. duration) (label "clear") (fun d ->
              d.set_loss c (Loss.none ()))
        | Gilbert_loss p ->
          (* Bursty loss for the whole window: a fresh Gilbert–Elliott
             process per firing (its state is private to the link), bad
             state losing [p], good state nearly clean. *)
          add at (label "start") (fun d ->
              d.set_loss c
                (Loss.gilbert ~p_good_to_bad:0.1 ~p_bad_to_good:0.25
                   ~loss_good:(p /. 20.0) ~loss_bad:p));
          add (at +. duration) (label "clear") (fun d ->
              d.set_loss c (Loss.none ()))
        | Rate_collapse f ->
          add at (label "start") (fun d -> d.scale_rate c f);
          add (at +. duration) (label "clear") (fun d -> d.scale_rate c 1.0)
        | Flap period ->
          if period <= 0.0 then
            invalid_arg "Chaos: flap period must be positive";
          (* Carrier bounces: down half a period, up half a period, for
             the window; always ends up (clamped to the window edge). *)
          let k = ref 0 in
          let continue_ = ref true in
          while !continue_ do
            let down_at = at +. (float_of_int !k *. period) in
            if down_at >= at +. duration then continue_ := false
            else begin
              let up_at = Float.min (down_at +. (period /. 2.0))
                  (at +. duration)
              in
              add down_at
                (label (Printf.sprintf "flap%d-down" !k))
                (fun d -> d.set_channel_up c false);
              add up_at
                (label (Printf.sprintf "flap%d-up" !k))
                (fun d -> d.set_channel_up c true);
              incr k
            end
          done))
    actions;
  (* Deterministic order = deterministic event indices: time, then the
     transition label breaks ties (stable across runs by construction —
     labels are unique per (action, channel) pair in sane plans). *)
  List.sort (fun a b -> compare (a.at, a.what) (b.at, b.what)) !ts

let horizon actions =
  List.fold_left
    (fun acc a ->
      match a with
      | Storm { at; duration; _ } -> Float.max acc (at +. duration)
      | Crash { at; downtime; _ } -> Float.max acc (at +. downtime)
      | Violate { at; _ } -> Float.max acc at
      | Degrade { at; duration; _ } -> Float.max acc (at +. duration))
    0.0 actions

let apply sim ?on_event driver actions =
  List.iteri
    (fun index tr ->
      Sim.schedule sim ~at:tr.at (fun () ->
          (match on_event with
          | Some f -> f ~index ~time:tr.at tr.what
          | None -> ());
          tr.fire driver))
    (compile actions)

(* Seeded random plan: Poisson storm and crash arrivals over a horizon.
   Storms hit a random non-empty channel subset (the instantaneous
   shared-risk group); crashes pick a side and a bundle uniformly. All
   outages close before [horizon] plus their own duration — soaks
   assert recovery after the schedule drains. *)
let random_plan ~rng ~n_channels ~n_bundles ~horizon:h
    ?(storm_every = 0.0) ?(crash_every = 0.0) ?(degrade_every = 0.0)
    ?(mean_outage = 0.05) ?(mean_downtime = 0.05) ?(mean_degrade = 0.5) () =
  if n_channels <= 0 then invalid_arg "Chaos.random_plan: n_channels";
  if n_bundles <= 0 then invalid_arg "Chaos.random_plan: n_bundles";
  if h <= 0.0 then invalid_arg "Chaos.random_plan: horizon must be positive";
  if mean_outage <= 0.0 || mean_downtime <= 0.0 || mean_degrade <= 0.0 then
    invalid_arg "Chaos.random_plan: means must be positive";
  let actions = ref [] in
  if storm_every > 0.0 then begin
    let t = ref (Rng.exponential rng ~mean:storm_every) in
    while !t < h do
      (* Group size 1..n_channels, then a distinct-channel draw: shuffle
         the identity permutation and take a prefix. *)
      let k = 1 + Rng.int rng n_channels in
      let perm = Array.init n_channels (fun i -> i) in
      Rng.shuffle rng perm;
      let channels = Array.to_list (Array.sub perm 0 k) in
      let duration = Rng.exponential rng ~mean:mean_outage in
      actions := Storm { channels; at = !t; duration } :: !actions;
      t := !t +. Rng.exponential rng ~mean:storm_every
    done
  end;
  if crash_every > 0.0 then begin
    let t = ref (Rng.exponential rng ~mean:crash_every) in
    while !t < h do
      let side = if Rng.bool rng then Tx else Rx in
      let bundle = Rng.int rng n_bundles in
      let downtime = Rng.exponential rng ~mean:mean_downtime in
      actions := Crash { side; bundle; at = !t; downtime } :: !actions;
      t := !t +. Rng.exponential rng ~mean:crash_every
    done
  end;
  if degrade_every > 0.0 then begin
    (* Gray failures: one channel at a time slips into bursty loss, an
       escalating loss ramp, a rate collapse, or carrier flapping —
       without ever going cleanly dark. Windows are exponential around
       [mean_degrade] (floored so a window always contains traffic). *)
    let t = ref (Rng.exponential rng ~mean:degrade_every) in
    while !t < h do
      let channel = Rng.int rng n_channels in
      let duration =
        Float.max (mean_degrade /. 4.0)
          (Rng.exponential rng ~mean:mean_degrade)
      in
      let kind =
        match Rng.int rng 4 with
        | 0 -> Loss_ramp (Rng.uniform rng ~lo:0.2 ~hi:0.8)
        | 1 -> Gilbert_loss (Rng.uniform rng ~lo:0.3 ~hi:0.9)
        | 2 -> Rate_collapse (Rng.uniform rng ~lo:0.05 ~hi:0.4)
        | _ -> Flap (Float.max 0.01 (duration /. 6.0))
      in
      actions := Degrade { channel; kind; at = !t; duration } :: !actions;
      t := !t +. Rng.exponential rng ~mean:degrade_every
    done
  end;
  let time = function
    | Storm { at; _ } | Crash { at; _ } | Violate { at; _ }
    | Degrade { at; _ } ->
      at
  in
  List.stable_sort
    (fun a b -> Float.compare (time a) (time b))
    (List.rev !actions)

(* Spec grammar (for --chaos command-line flags):

     ITEM[,ITEM...]

   with ITEM one of
     storm=C1+C2+.../DUR@T   carrier loss on the channel group for DUR s
     crash=tx/ID/DUR@T       sender of bundle ID down for DUR seconds
     crash=rx/ID/DUR@T       receiver of bundle ID down for DUR seconds
     violate=ID@T            poison bundle ID's FIFO monitor (test hook)
     degrade=CH/loss/P/DUR@T     loss ramp to P on channel CH for DUR s
     degrade=CH/gilbert/P/DUR@T  bursty (Gilbert) loss, bad state loses P
     degrade=CH/rate/F/DUR@T     service rate scaled by F (0 < F <= 1)
     degrade=CH/flap/PER/DUR@T   carrier flaps with period PER seconds *)
let parse_spec s =
  let open Spec in
  let c = ctx ~kind:"chaos" s in
  let parse_item c tok =
    let* lhs, at = timed c tok in
    match kv lhs with
    | "storm", Some v ->
      let* chans, dur = pair c ~what:"storm" ~sep:'/' v in
      let* duration = non_negative c ~what:"storm duration" dur in
      let* channels =
        List.fold_left
          (fun acc ch ->
            let* acc = acc in
            let* ch = channel c ~what:"storm channel" ch in
            Ok (ch :: acc))
          (Ok [])
          (String.split_on_char '+' chans)
      in
      if channels = [] then errf c "empty storm channel group"
      else Ok (Storm { channels = List.rev channels; at; duration })
    | "crash", Some v -> (
      match String.split_on_char '/' v with
      | [ side; id; dur ] ->
        let* side =
          match String.trim side with
          | "tx" -> Ok Tx
          | "rx" -> Ok Rx
          | other -> errf c "bad crash side %S (want tx or rx)" other
        in
        let* bundle = channel c ~what:"crash bundle" id in
        let* downtime = non_negative c ~what:"crash downtime" dur in
        Ok (Crash { side; bundle; at; downtime })
      | _ -> errf c "crash needs SIDE/BUNDLE/DOWNTIME, got %S" v)
    | "violate", Some v ->
      let* bundle = channel c ~what:"violate bundle" v in
      Ok (Violate { bundle; at })
    | "degrade", Some v -> (
      match String.split_on_char '/' v with
      | [ ch; kind; param; dur ] ->
        let* ch = channel c ~what:"degrade channel" ch in
        let* duration = positive c ~what:"degrade duration" dur in
        let* kind =
          match String.trim kind with
          | "loss" ->
            let* p = prob c ~what:"degrade loss" param in
            Ok (Loss_ramp p)
          | "gilbert" ->
            let* p = prob c ~what:"degrade gilbert loss" param in
            Ok (Gilbert_loss p)
          | "rate" ->
            let* f = positive c ~what:"degrade rate fraction" param in
            if f > 1.0 then
              errf c "degrade rate fraction %g must be <= 1" f
            else Ok (Rate_collapse f)
          | "flap" ->
            let* p = positive c ~what:"degrade flap period" param in
            Ok (Flap p)
          | other ->
            errf c
              "bad degrade kind %S (want loss, gilbert, rate, or flap)"
              other
        in
        Ok (Degrade { channel = ch; kind; at; duration })
      | _ -> errf c "degrade needs CH/KIND/PARAM/DUR, got %S" v)
    | name, _ ->
      errf c
        "unknown chaos item %S (want storm=, crash=, violate=, degrade=)"
        name
  in
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | (c, tok) :: rest ->
      let* a = parse_item c tok in
      collect (a :: acc) rest
  in
  collect [] (located c s)
