(* Correlated fault storms and endpoint crash/restart schedules — the
   chaos engine's composition layer.

   A plan is a list of high-level actions (a storm over a shared-risk
   group of channels, an endpoint crash with a downtime, a deliberate
   monitor-violation injection); [apply] compiles it to primitive
   transitions on the simulator clock and hands each one to the caller's
   driver. The module knows nothing about bundles or pools: the driver
   record is the whole interface, so the same plan drives a
   [Bundle_pool] fleet, a [Stripe_layer] pair, or a test harness.

   Reproducibility is the point. Plans are either parsed from a spec
   string or drawn from a seeded [Rng], and [apply] numbers the
   primitive transitions in deterministic time order — so "seed S,
   event 17" pins a failure to one instant of one schedule. *)

type side = Tx | Rx

type action =
  | Storm of { channels : int list; at : float; duration : float }
  | Crash of { side : side; bundle : int; at : float; downtime : float }
  | Violate of { bundle : int; at : float }

type driver = {
  set_channel_up : int -> bool -> unit;
  crash : side -> int -> unit;
  restart : side -> int -> unit;
  violate : int -> unit;
}

let side_name = function Tx -> "tx" | Rx -> "rx"

let pp_action fmt = function
  | Storm { channels; at; duration } ->
    Format.fprintf fmt "%g: storm ch[%s] for %gs" at
      (String.concat "+" (List.map string_of_int channels))
      duration
  | Crash { side; bundle; at; downtime } ->
    Format.fprintf fmt "%g: crash %s/%d for %gs" at (side_name side) bundle
      downtime
  | Violate { bundle; at } ->
    Format.fprintf fmt "%g: violate %d" at bundle

(* One primitive transition of a compiled plan. *)
type transition = { at : float; what : string; fire : driver -> unit }

let compile actions =
  let ts = ref [] in
  let add at what fire = ts := { at; what; fire } :: !ts in
  List.iter
    (fun a ->
      match a with
      | Storm { channels; at; duration } ->
        if duration < 0.0 then invalid_arg "Chaos: negative storm duration";
        List.iter
          (fun c ->
            if c < 0 then invalid_arg "Chaos: negative storm channel";
            add at
              (Printf.sprintf "storm-down ch%d" c)
              (fun d -> d.set_channel_up c false);
            add (at +. duration)
              (Printf.sprintf "storm-up ch%d" c)
              (fun d -> d.set_channel_up c true))
          channels
      | Crash { side; bundle; at; downtime } ->
        if downtime < 0.0 then invalid_arg "Chaos: negative downtime";
        if bundle < 0 then invalid_arg "Chaos: negative bundle";
        add at
          (Printf.sprintf "crash %s/%d" (side_name side) bundle)
          (fun d -> d.crash side bundle);
        add (at +. downtime)
          (Printf.sprintf "restart %s/%d" (side_name side) bundle)
          (fun d -> d.restart side bundle)
      | Violate { bundle; at } ->
        if bundle < 0 then invalid_arg "Chaos: negative bundle";
        add at
          (Printf.sprintf "violate %d" bundle)
          (fun d -> d.violate bundle))
    actions;
  (* Deterministic order = deterministic event indices: time, then the
     transition label breaks ties (stable across runs by construction —
     labels are unique per (action, channel) pair in sane plans). *)
  List.sort (fun a b -> compare (a.at, a.what) (b.at, b.what)) !ts

let horizon actions =
  List.fold_left
    (fun acc a ->
      match a with
      | Storm { at; duration; _ } -> Float.max acc (at +. duration)
      | Crash { at; downtime; _ } -> Float.max acc (at +. downtime)
      | Violate { at; _ } -> Float.max acc at)
    0.0 actions

let apply sim ?on_event driver actions =
  List.iteri
    (fun index tr ->
      Sim.schedule sim ~at:tr.at (fun () ->
          (match on_event with
          | Some f -> f ~index ~time:tr.at tr.what
          | None -> ());
          tr.fire driver))
    (compile actions)

(* Seeded random plan: Poisson storm and crash arrivals over a horizon.
   Storms hit a random non-empty channel subset (the instantaneous
   shared-risk group); crashes pick a side and a bundle uniformly. All
   outages close before [horizon] plus their own duration — soaks
   assert recovery after the schedule drains. *)
let random_plan ~rng ~n_channels ~n_bundles ~horizon:h
    ?(storm_every = 0.0) ?(crash_every = 0.0) ?(mean_outage = 0.05)
    ?(mean_downtime = 0.05) () =
  if n_channels <= 0 then invalid_arg "Chaos.random_plan: n_channels";
  if n_bundles <= 0 then invalid_arg "Chaos.random_plan: n_bundles";
  if h <= 0.0 then invalid_arg "Chaos.random_plan: horizon must be positive";
  if mean_outage <= 0.0 || mean_downtime <= 0.0 then
    invalid_arg "Chaos.random_plan: means must be positive";
  let actions = ref [] in
  if storm_every > 0.0 then begin
    let t = ref (Rng.exponential rng ~mean:storm_every) in
    while !t < h do
      (* Group size 1..n_channels, then a distinct-channel draw: shuffle
         the identity permutation and take a prefix. *)
      let k = 1 + Rng.int rng n_channels in
      let perm = Array.init n_channels (fun i -> i) in
      Rng.shuffle rng perm;
      let channels = Array.to_list (Array.sub perm 0 k) in
      let duration = Rng.exponential rng ~mean:mean_outage in
      actions := Storm { channels; at = !t; duration } :: !actions;
      t := !t +. Rng.exponential rng ~mean:storm_every
    done
  end;
  if crash_every > 0.0 then begin
    let t = ref (Rng.exponential rng ~mean:crash_every) in
    while !t < h do
      let side = if Rng.bool rng then Tx else Rx in
      let bundle = Rng.int rng n_bundles in
      let downtime = Rng.exponential rng ~mean:mean_downtime in
      actions := Crash { side; bundle; at = !t; downtime } :: !actions;
      t := !t +. Rng.exponential rng ~mean:crash_every
    done
  end;
  let time = function
    | Storm { at; _ } | Crash { at; _ } | Violate { at; _ } -> at
  in
  List.stable_sort
    (fun a b -> Float.compare (time a) (time b))
    (List.rev !actions)

(* Spec grammar (for --chaos command-line flags):

     ITEM[,ITEM...]

   with ITEM one of
     storm=C1+C2+.../DUR@T   carrier loss on the channel group for DUR s
     crash=tx/ID/DUR@T       sender of bundle ID down for DUR seconds
     crash=rx/ID/DUR@T       receiver of bundle ID down for DUR seconds
     violate=ID@T            poison bundle ID's FIFO monitor (test hook) *)
let parse_spec s =
  let open Spec in
  let c = ctx ~kind:"chaos" s in
  let parse_item tok =
    let* lhs, at = timed c tok in
    match kv lhs with
    | "storm", Some v ->
      let* chans, dur = pair c ~what:"storm" ~sep:'/' v in
      let* duration = non_negative c ~what:"storm duration" dur in
      let* channels =
        List.fold_left
          (fun acc ch ->
            let* acc = acc in
            let* ch = channel c ~what:"storm channel" ch in
            Ok (ch :: acc))
          (Ok [])
          (String.split_on_char '+' chans)
      in
      if channels = [] then errf c "empty storm channel group"
      else Ok (Storm { channels = List.rev channels; at; duration })
    | "crash", Some v -> (
      match String.split_on_char '/' v with
      | [ side; id; dur ] ->
        let* side =
          match String.trim side with
          | "tx" -> Ok Tx
          | "rx" -> Ok Rx
          | other -> errf c "bad crash side %S (want tx or rx)" other
        in
        let* bundle = channel c ~what:"crash bundle" id in
        let* downtime = non_negative c ~what:"crash downtime" dur in
        Ok (Crash { side; bundle; at; downtime })
      | _ -> errf c "crash needs SIDE/BUNDLE/DOWNTIME, got %S" v)
    | "violate", Some v ->
      let* bundle = channel c ~what:"violate bundle" v in
      Ok (Violate { bundle; at })
    | name, _ ->
      errf c "unknown chaos item %S (want storm=, crash=, violate=)" name
  in
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | tok :: rest ->
      let* a = parse_item tok in
      collect (a :: acc) rest
  in
  collect [] (items s)
