(* Intra-channel impairment profiles: the ways a channel can violate the
   paper's loss-only FIFO assumption (PROTOCOL.md §1) without dying.
   Each profile is a set of per-packet probabilities applied by Link at
   delivery scheduling time; every draw comes from the link's seeded Rng,
   so runs are reproducible from one CLI seed. *)

type t = {
  reorder_p : float;
  reorder_window : float;
  dup_p : float;
  corrupt_p : float;
}

let none = { reorder_p = 0.0; reorder_window = 0.0; dup_p = 0.0; corrupt_p = 0.0 }

let is_none t =
  t.reorder_p <= 0.0 && t.dup_p <= 0.0 && t.corrupt_p <= 0.0

let check_p what p =
  if p < 0.0 || p > 1.0 then
    invalid_arg (Printf.sprintf "Impair: %s probability %g not in [0,1]" what p)

let make ?(reorder_p = 0.0) ?(reorder_window = 0.0) ?(dup_p = 0.0)
    ?(corrupt_p = 0.0) () =
  check_p "reorder" reorder_p;
  check_p "duplicate" dup_p;
  check_p "corrupt" corrupt_p;
  if reorder_window < 0.0 then
    invalid_arg "Impair.make: negative reorder window";
  if reorder_p > 0.0 && reorder_window <= 0.0 then
    invalid_arg "Impair.make: reordering needs a positive window";
  { reorder_p; reorder_window; dup_p; corrupt_p }

let pp fmt t =
  if is_none t then Format.fprintf fmt "none"
  else begin
    let parts = ref [] in
    if t.corrupt_p > 0.0 then
      parts := Printf.sprintf "corrupt=%g" t.corrupt_p :: !parts;
    if t.dup_p > 0.0 then parts := Printf.sprintf "dup=%g" t.dup_p :: !parts;
    if t.reorder_p > 0.0 then
      parts :=
        Printf.sprintf "reorder=%g/%g" t.reorder_p t.reorder_window :: !parts;
    Format.fprintf fmt "%s" (String.concat "," !parts)
  end

(* Spec grammar (for --impair command-line flags), mirroring Fault's:

     CH:IMPAIRMENT[,IMPAIRMENT...]

   with IMPAIRMENT one of
     reorder=P/WINDOW   probability P of an unclamped extra delay drawn
                        uniformly from [0, WINDOW] seconds
     dup=P              probability P of delivering a packet twice
     corrupt=P          probability P of corrupting a packet on the wire *)
let parse_spec s =
  let ( let* ) = Result.bind in
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let parse_float what v =
    match float_of_string_opt v with
    | Some f -> Ok f
    | None -> fail "bad %s %S in impair spec %S" what v s
  in
  let parse_p what v =
    let* p = parse_float what v in
    if p < 0.0 || p > 1.0 then
      fail "%s probability %g not in [0,1] in %S" what p s
    else Ok p
  in
  let parse_item acc tok =
    match String.index_opt tok '=' with
    | None -> fail "impairment %S lacks a =VALUE in %S" tok s
    | Some i -> (
      let name = String.sub tok 0 i in
      let v = String.sub tok (i + 1) (String.length tok - i - 1) in
      match name with
      | "reorder" -> (
        match String.split_on_char '/' v with
        | [ p; w ] ->
          let* p = parse_p "reorder" p in
          let* w = parse_float "reorder window" w in
          if w <= 0.0 then fail "reorder window must be > 0 in %S" s
          else Ok { acc with reorder_p = p; reorder_window = w }
        | _ -> fail "reorder needs P/WINDOW in %S" s)
      | "dup" ->
        let* p = parse_p "duplicate" v in
        Ok { acc with dup_p = p }
      | "corrupt" ->
        let* p = parse_p "corrupt" v in
        Ok { acc with corrupt_p = p }
      | _ -> fail "unknown impairment %S in %S" name s)
  in
  match String.index_opt s ':' with
  | None -> fail "impair spec %S lacks a CH: prefix" s
  | Some i -> (
    let ch = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    match int_of_string_opt ch with
    | None -> fail "bad channel %S in impair spec %S" ch s
    | Some channel ->
      if channel < 0 then fail "negative channel in impair spec %S" s
      else
        let rec collect acc = function
          | [] -> Ok (channel, acc)
          | tok :: rest ->
            let* acc = parse_item acc (String.trim tok) in
            collect acc rest
        in
        collect none (String.split_on_char ',' rest))
