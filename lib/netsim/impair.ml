(* Intra-channel impairment profiles: the ways a channel can violate the
   paper's loss-only FIFO assumption (PROTOCOL.md §1) without dying.
   Each profile is a set of per-packet probabilities applied by Link at
   delivery scheduling time; every draw comes from the link's seeded Rng,
   so runs are reproducible from one CLI seed. *)

type t = {
  reorder_p : float;
  reorder_window : float;
  dup_p : float;
  corrupt_p : float;
}

let none = { reorder_p = 0.0; reorder_window = 0.0; dup_p = 0.0; corrupt_p = 0.0 }

let is_none t =
  t.reorder_p <= 0.0 && t.dup_p <= 0.0 && t.corrupt_p <= 0.0

let check_p what p =
  if p < 0.0 || p > 1.0 then
    invalid_arg (Printf.sprintf "Impair: %s probability %g not in [0,1]" what p)

let make ?(reorder_p = 0.0) ?(reorder_window = 0.0) ?(dup_p = 0.0)
    ?(corrupt_p = 0.0) () =
  check_p "reorder" reorder_p;
  check_p "duplicate" dup_p;
  check_p "corrupt" corrupt_p;
  if reorder_window < 0.0 then
    invalid_arg "Impair.make: negative reorder window";
  if reorder_p > 0.0 && reorder_window <= 0.0 then
    invalid_arg "Impair.make: reordering needs a positive window";
  { reorder_p; reorder_window; dup_p; corrupt_p }

let pp fmt t =
  if is_none t then Format.fprintf fmt "none"
  else begin
    let parts = ref [] in
    if t.corrupt_p > 0.0 then
      parts := Printf.sprintf "corrupt=%g" t.corrupt_p :: !parts;
    if t.dup_p > 0.0 then parts := Printf.sprintf "dup=%g" t.dup_p :: !parts;
    if t.reorder_p > 0.0 then
      parts :=
        Printf.sprintf "reorder=%g/%g" t.reorder_p t.reorder_window :: !parts;
    Format.fprintf fmt "%s" (String.concat "," !parts)
  end

(* Spec grammar (for --impair command-line flags), mirroring Fault's:

     CH:IMPAIRMENT[,IMPAIRMENT...]

   with IMPAIRMENT one of
     reorder=P/WINDOW   probability P of an unclamped extra delay drawn
                        uniformly from [0, WINDOW] seconds
     dup=P              probability P of delivering a packet twice
     corrupt=P          probability P of corrupting a packet on the wire *)
let parse_spec s =
  let open Spec in
  let c = ctx ~kind:"impair" s in
  let parse_item c acc tok =
    match kv tok with
    | _, None -> errf c "impairment %S lacks a =VALUE" tok
    | "reorder", Some v ->
      let* p, w = pair c ~what:"reorder" ~sep:'/' v in
      let* p = prob c ~what:"reorder" p in
      let* w = positive c ~what:"reorder window" w in
      Ok { acc with reorder_p = p; reorder_window = w }
    | "dup", Some v ->
      let* p = prob c ~what:"duplicate" v in
      Ok { acc with dup_p = p }
    | "corrupt", Some v ->
      let* p = prob c ~what:"corrupt" v in
      Ok { acc with corrupt_p = p }
    | name, Some _ ->
      errf c "unknown impairment %S (want reorder=, dup=, corrupt=)" name
  in
  let* channel, rest = channel_prefix c in
  let rec collect acc = function
    | [] -> Ok (channel, acc)
    | (c, tok) :: rest ->
      let* acc = parse_item c acc tok in
      collect acc rest
  in
  collect none (located c rest)
