open Stripe_packet

type t = {
  n : int;
  striper : Stripe_core.Striper.t;
  reseq : Stripe_core.Resequencer.t;
  reassemblers : Aal5.Reassembler.t array;
  send_cell : vc:int -> Cell.t -> unit;
  mutable n_pushed : int;
  mutable n_delivered : int;
}

let create ~n_vcs ~quanta ?marker ?now ~send_cell ~deliver () =
  if n_vcs <= 0 then invalid_arg "Stripe_vc.create: no VCs";
  if Array.length quanta <> n_vcs then invalid_arg "Stripe_vc.create: quanta arity";
  let engine = Stripe_core.Srr.create ~quanta () in
  let self = ref None in
  let force_self () = match !self with Some x -> x | None -> assert false in
  let reseq =
    Stripe_core.Resequencer.create
      ~deficit:(Stripe_core.Deficit.clone_initial engine)
      ~deliver:(fun ~channel:_ pkt ->
        let t = force_self () in
        t.n_delivered <- t.n_delivered + 1;
        deliver pkt)
      ()
  in
  let striper =
    Stripe_core.Striper.create
      ~scheduler:(Stripe_core.Scheduler.of_deficit ~name:"SRR" engine)
      ?marker ?now
      ~emit:(fun ~channel pkt ->
        let t = force_self () in
        if Packet.is_marker pkt then
          (* Markers become OAM cells on the same VC. *)
          t.send_cell ~vc:channel
            { Cell.vci = channel; kind = Cell.Oam (Packet.get_marker pkt) }
        else
          List.iter
            (fun cell -> t.send_cell ~vc:channel cell)
            (Aal5.segment ~vci:channel pkt))
      ()
  in
  let reassemblers =
    Array.init n_vcs (fun vc ->
        Aal5.Reassembler.create
          ~deliver:(fun pkt ->
            let t = force_self () in
            Stripe_core.Resequencer.receive t.reseq ~channel:vc pkt)
          ())
  in
  let t =
    {
      n = n_vcs;
      striper;
      reseq;
      reassemblers;
      send_cell;
      n_pushed = 0;
      n_delivered = 0;
    }
  in
  self := Some t;
  t

(* Deficit counters are charged the datagram's payload size, on both the
   sending and the simulating (receiving) side — the quantities must
   match for the simulation to track, and the AAL5 cell padding is the
   same bounded factor on every VC, so payload-byte fairness equals
   wire-byte fairness up to one cell per packet. *)
let push t pkt =
  if Packet.is_marker pkt then invalid_arg "Stripe_vc.push: marker";
  t.n_pushed <- t.n_pushed + 1;
  Stripe_core.Striper.push t.striper pkt

let receive_cell t ~vc cell =
  if vc < 0 || vc >= t.n then invalid_arg "Stripe_vc.receive_cell: bad VC";
  match cell.Cell.kind with
  | Cell.Oam m ->
    Stripe_core.Resequencer.receive t.reseq ~channel:vc
      (Packet.marker ?credit:m.Packet.m_credit ~reset:m.Packet.m_reset
         ~epoch:m.Packet.m_epoch ~gen:m.Packet.m_gen
         ~channel:m.Packet.m_channel ~round:m.Packet.m_round ~dc:m.Packet.m_dc
         ~born:0.0 ())
  | Cell.Data _ -> Aal5.Reassembler.receive t.reassemblers.(vc) cell

let pushed t = t.n_pushed
let delivered t = t.n_delivered

let corrupted_frames t =
  Array.fold_left
    (fun acc r -> acc + Aal5.Reassembler.corrupted_frames r)
    0 t.reassemblers

let markers_sent t = Stripe_core.Striper.markers_sent t.striper
let resequencer t = t.reseq
