(** Causal Fair Queuing algorithms and the load-sharing transformation.

    §3.1 of the paper characterizes a {e Causal} Fair Queuing (CFQ)
    algorithm, in its backlogged execution, by a state [s] and two
    functions applied in succession: a selector [f(s)] that picks a queue,
    and an update [g(s, p)] applied after the packet [p] at the head of
    the selected queue is transmitted. Crucially, [f] may depend only on
    the state — i.e. only on previously transmitted packets — never on the
    contents of the queues. Ordinary round robin is causal; DKS
    bit-by-bit-simulation fair queuing is not.

    §3.2 gives the transformation: run the {e same} [(s0, f, g)] at a
    sender with a single input queue, but use [f(s)] to {e push} the next
    packet to output channel [f(s)] instead of pulling from queue [f(s)].
    Theorem 3.1 shows the transformed algorithm inherits the fairness of
    the original.

    This module makes both directions executable over one first-class
    representation, which is what the duality property tests exercise:
    feeding the per-channel outputs of [load_share] back into [fair_queue]
    must reproduce the original input sequence (the E ↔ E' correspondence
    in the proof of Theorem 3.1). *)

type instance = {
  select : unit -> int;  (** [f(s)]: pick the queue/channel for the next packet. *)
  update : size:int -> unit;  (** [g(s, p)]: account for the transmitted packet. *)
  reset : unit -> unit;
      (** Return the instance to the initial state [s0]: the §5 reset
          barrier's effect on the algorithm state. For deficit-backed
          algorithms this is {!Deficit.reinit}; for {!seeded_random} it
          reseeds the RNG {e and} discards any draw cached by a [select]
          whose packet was never dispatched — a stale cached draw would
          leave the sender one draw ahead of the receiver's replay
          forever after. *)
}

type t = {
  name : string;
  n : int;  (** Number of queues/channels. *)
  fresh : unit -> instance;  (** A new instance at the initial state [s0]. *)
}

val of_deficit : name:string -> (unit -> Deficit.t) -> t
(** Wrap a deficit-engine constructor (SRR, RR, GRR configurations) as a
    CFQ algorithm. Each [fresh] call builds an engine from the initial
    state. *)

val seeded_random : name:string -> n:int -> seed:int -> t
(** The randomized fair queuing (RFQ) scheme of §3.4: pick a uniformly
    random queue for every packet. With a shared seed the selection
    sequence is a pure function of the number of packets already sent, so
    the algorithm is causal and a receiver that knows the seed can
    simulate it. Expected bytes per channel are identical, i.e. RFQ is
    fair in the randomized sense of §3.3. *)

val load_aware : ?weights:float array -> name:string -> n:int -> unit -> t
(** Min-load selection (the memec [StripeList] LOAD_AWARE idiom) in pure
    form: each packet goes to the channel with the least cumulative
    assigned bytes per unit [weight] (default all equal), ties to the
    lowest index. Because the state is exactly the multiset of
    previously transmitted packets, this pure variant is causal in the
    §3.1 sense and satisfies the E ↔ E' duality; the fleet deployment
    ({!Scheduler.load_aware}) replaces the cumulative counter with live
    wire debt, which the receiver cannot see — that variant is not
    causal. Weights must be positive. *)

val load_share : t -> (int * 'a) list -> (int * (int * 'a)) list
(** [load_share cfq packets] runs the transformed algorithm over an input
    sequence of [(size, payload)] pairs, as in Figure 3. Returns the
    dispatch sequence [(channel, (size, payload))] in transmission
    order. *)

val fair_queue : t -> (int * 'a) list array -> (int * (int * 'a)) list option
(** [fair_queue cfq queues] runs the original algorithm over backlogged
    input queues, as in Figure 2. Returns the service order
    [(queue, (size, payload))]. The backlog assumption means execution is
    only defined while the selected queue is non-empty: the run ends
    normally when every queue is empty, and returns [None] if the
    algorithm selects an exhausted queue while others still hold packets
    (the execution left the backlogged regime). *)

val outputs_by_channel : n:int -> (int * 'a) list -> 'a list array
(** Group a dispatch sequence per channel, preserving per-channel order —
    builds the initial queues of execution E' from the outputs of E. *)
