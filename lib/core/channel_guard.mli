(** Receiver-side channel guard: restores the loss-only FIFO contract.

    The protocol's correctness theorems assume each channel is a
    loss-only FIFO pipe (PROTOCOL.md §1). This guard sits between
    physical arrival and the resequencer and turns a misbehaving channel
    — one that reorders, duplicates, or corrupts — back into one the
    resequencer can trust, at the cost of a small per-channel sequence
    tag added by the sender:

    - {b duplicates} are identified by their tag and discarded
      ([Dup_discard] event);
    - {b reordering} within a bounded window is undone: an early arrival
      is held until the tags before it show up, then released in tag
      order ([Reorder_restore] event per held packet released);
    - {b corrupted markers} (damage the link CRC missed, caught by the
      marker checksum — {!Stripe_packet.Packet.marker_valid}) are
      discarded and counted ([Corrupt_discard] event) {e but their tag is
      consumed}, so the stream position advances; the resequencer
      resynchronizes from the next good marker exactly as for a lost one
      (Theorem 5.1).

    A tag gap that never fills (a genuinely lost packet) is declared
    lost when the hold window overflows: the guard advances past the gap
    and releases what it holds in order, degrading to exactly the loss
    the protocol already tolerates. The guard never blocks and holds at
    most [window] packets per channel.

    The tag is {e out of band} of the payload (think link-level shim
    header with its own CRC coverage), so the paper's "data packets are
    never modified" stance is preserved at the protocol layer: the guard
    strips the tag before the resequencer ever sees the packet. *)

module Tx : sig
  type t
  (** Sender-side tag stamper: one sequential counter per channel,
      covering every packet (data and markers alike) dispatched on it. *)

  val create : n:int -> t

  val next_tag : t -> channel:int -> int
  (** Assign the next tag for [channel], starting at 0. *)

  val reset : t -> unit
  (** Restart every channel's tags at 0 (sender crash/reset). *)
end

type t

val create :
  n:int ->
  ?window:int ->
  ?now:(unit -> float) ->
  ?sink:Stripe_obs.Sink.t ->
  deliver:(channel:int -> Stripe_packet.Packet.t -> unit) ->
  unit ->
  t
(** [create ~n ~deliver ()] guards [n] channels, forwarding in-tag-order
    packets to [deliver]. [window] (default 32, must be > 0) bounds the
    out-of-order packets held per channel; when a channel holds more, the
    oldest gap is declared lost. [sink] receives [Dup_discard],
    [Reorder_restore], and [Corrupt_discard] events. *)

val receive : t -> channel:int -> tag:int -> Stripe_packet.Packet.t -> unit
(** Process one physical arrival carrying the sender's [tag]. In-order
    arrivals forward immediately (no allocation, no event). *)

val recycle : t -> unit
(** Re-arm the guard for a fresh bundle, in place: everything still held
    is {e discarded} (it belonged to the previous bundle's stream — a
    {!flush} would deliver it to the wrong owner), tags restart at 0 on
    every channel, and all counters reset. The [deliver] callback and
    sink are kept. Pairs with {!Tx.reset} on the sender side. *)

val flush : t -> unit
(** Declare every outstanding gap lost and release everything held, in
    tag order (end of run, or a timer deciding the gaps will never
    fill). *)

(** Counters (cumulative since creation). *)

val forwarded : t -> int
(** Packets handed to [deliver]. *)

val dup_discards : t -> int
(** Arrivals discarded as duplicates — or as stragglers arriving after
    their gap was already declared lost (delivering those would break
    FIFO). *)

val reorder_restores : t -> int
(** Held packets whose gap {e filled}: an arrival completed the run and
    tag order was genuinely repaired before the stream position passed
    them. Releases forced by a window shed or {!flush} are {e not}
    restores — see {!late_releases}. *)

val late_releases : t -> int
(** Held packets released because the guard {e abandoned} their gap
    (window overflow or {!flush}): predecessors were declared lost and
    the packets left in tag order but late. These are judged by the
    downstream delivery-order gauges (a watchdog-skipped channel
    delivers them out of final order), so they are deliberately excluded
    from {!reorder_restores} — one packet, one column. *)

val corrupt_discards : t -> int
(** Markers discarded for a checksum mismatch. *)

val held_packets : t -> int
(** Out-of-order packets currently held across all channels. *)

val max_held_packets : t -> int
(** High-water mark of {!held_packets}. *)
