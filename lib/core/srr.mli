(** Surplus Round Robin (§3.5).

    Each channel [i] has a quantum of service [Quantum_i] in bytes,
    proportional to its bandwidth, and a deficit counter initialized to 0.
    When a channel is selected its DC is incremented by its quantum;
    packets are charged to the channel while the DC is positive; once the
    DC becomes non-positive the next channel is selected. A channel that
    overdraws its account is penalized by the surplus in the next round.

    Fairness (Theorem 3.2 / Lemma 3.3): after any [K] rounds, the bytes
    carried by channel [i] differ from [K * Quantum_i] by at most
    [Max + 2 * Quantum] where [Max] is the maximum packet size and
    [Quantum] the largest quantum. [fairness_bound] computes this bound.

    For the marker recovery protocol (Theorem 5.1) each quantum should be
    at least the maximum packet size, so no channel is ever skipped merely
    because its DC has not recovered; [create] checks this when
    [max_packet] is supplied. *)

val create : ?max_packet:int -> quanta:int array -> unit -> Deficit.t
(** [create ~quanta ()] builds an SRR engine (byte cost, overdraw
    allowed). If [max_packet] is given, raises [Invalid_argument] unless
    every quantum is at least [max_packet] — the precondition of the
    marker recovery theorem. *)

val create_uniform : ?max_packet:int -> n:int -> quantum:int -> unit -> Deficit.t
(** All channels share one quantum — the equal-capacity case. *)

val quanta_for_rates :
  ?max_packet:int -> rates_bps:float array -> quantum_unit:int -> unit ->
  int array
(** The quantum vector {!for_rates} uses: quanta proportional to
    [rates_bps], scaled so the {e smallest} quantum equals
    [quantum_unit], clamped to at least 1 after rounding. If
    [max_packet] is given and the skew rounded any quantum below it,
    {e every} quantum is multiplied by the smallest integer factor that
    restores [Quantum_i >= Max] — proportions (and thus bandwidth
    shares) are preserved, the round just gets longer; the Thm 5.1
    marker precondition is never silently violated. Raises
    [Invalid_argument] for non-positive or non-finite rates, and for
    skews so extreme the scaled quantum is not representable as an
    [int]. Adaptive policies ({!Rate_probe}) call this directly to plan
    a retune from fresh rate estimates. *)

val for_rates : ?max_packet:int -> rates_bps:float array -> quantum_unit:int -> unit -> Deficit.t
(** Weighted SRR for channels of different capacities (§3.5's
    generalization): an engine over {!quanta_for_rates}, with
    [max_packet] retained for {!fairness_bound}. *)

val fairness_bound : Deficit.t -> int
(** [Max + 2 * Quantum], the deviation bound of Theorem 3.2 / Lemma 3.3.
    [Max] is the [max_packet] recorded when the engine was created; when it
    was not supplied, [Max] falls back to the largest quantum (the largest
    packet the engine is meant to carry under the marker-recovery
    precondition [Quantum_i >= Max]). *)

val strict_drr : quanta:int array -> unit -> Deficit.t
(** The non-overdrawing DRR-style variant for the fairness ablation: a
    channel whose DC cannot cover the next packet is passed over rather
    than overdrawn. Not causal as a striping algorithm (the selection
    depends on the packet being dispatched), hence unusable for logical
    reception; see DESIGN.md §5. *)
