let default_stripe_scale = 4

let create ?max_packet ~seed ~quanta () =
  (match max_packet with
  | None -> ()
  | Some m ->
    Array.iter
      (fun q ->
        if q < m then
          invalid_arg
            (Printf.sprintf
               "Sprinklers.create: quantum %d below max packet size %d \
                violates the marker-recovery precondition (Quantum_i >= Max)"
               q m))
      quanta);
  Deficit.create ~cost:Deficit.Bytes ~overdraw:true ?max_packet
    ~order:(Deficit.Permuted seed) ~quanta ()

let quanta_for_rates ?max_packet ?(stripe_scale = default_stripe_scale)
    ~rates_bps ~quantum_unit () =
  if stripe_scale <= 0 then
    invalid_arg "Sprinklers.quanta_for_rates: stripe_scale must be positive";
  let q = Srr.quanta_for_rates ?max_packet ~rates_bps ~quantum_unit () in
  Array.map (fun x -> x * stripe_scale) q

let for_rates ?max_packet ?stripe_scale ~seed ~rates_bps ~quantum_unit () =
  create ?max_packet ~seed
    ~quanta:(quanta_for_rates ?max_packet ?stripe_scale ~rates_bps
               ~quantum_unit ())
    ()

(* Per-round service is identical to SRR over the same quanta — a round
   visits every channel exactly once whatever order it deals — so the
   Thm 3.2 bound carries over verbatim. *)
let fairness_bound = Srr.fairness_bound
