type position =
  | Round_start
  | Mid_round
  | Round_end

type policy = {
  every_rounds : int;
  position : position;
  credit_of : (int -> int) option;
}

let make ?credit_of ?(position = Round_end) ~every_rounds () =
  if every_rounds < 1 then invalid_arg "Marker.make: every_rounds must be >= 1";
  { every_rounds; position; credit_of }

let default = make ~every_rounds:4 ()

let packet_for ?(epoch = 0) ?(gen = 0) policy ~deficit ~channel ~now =
  let stamp = Deficit.next_stamp deficit channel in
  let credit = Option.map (fun f -> f channel) policy.credit_of in
  Stripe_packet.Packet.marker ?credit ~epoch ~gen ~channel
    ~round:stamp.Deficit.round ~dc:stamp.Deficit.dc ~born:now ()
