(** Logical reception: receiver-side resequencing without packet headers.

    The receiver separates {e physical} reception (a packet arriving on a
    channel, which merely appends it to that channel's buffer) from
    {e logical} reception: the receiver runs the {e same} CFQ algorithm as
    the sender's striper to know which channel the next packet must come
    from, removes packets in that order, and {b blocks} on the expected
    channel while buffering arrivals on the others (§4). With no loss this
    reproduces the sender's input sequence exactly (Theorem 4.1),
    whatever the per-channel skews.

    Loss desynchronizes the simulation, after which delivery is only
    {e quasi-FIFO}. Recovery uses the marker protocol of §5: a marker on
    channel [c] carries the implicit number [(r, d)] — round and deficit
    counter — of the next data packet {e behind it} on [c]. Markers are
    therefore processed in their FIFO position within the channel's
    stream: they are buffered like data and take effect when logical
    reception reaches them (data buffered ahead of a marker is served
    under the pre-marker state it belongs to). When a marker takes
    effect the receiver records [(r, d)] for [c]; during its round-robin
    scan it {b skips} any channel whose recorded round exceeds its own
    global round [G]: it has lost packets on [c] and arrived "too early",
    so it must wait that many rounds before visiting [c] again — this
    enforces condition C1 (never deliver a higher-round packet before a
    lower-round one). When the scan's round reaches [r], the channel's DC
    is pinned to [d], resynchronizing the simulation. Once a marker has
    been delivered on every channel after errors stop, FIFO delivery is
    restored (Theorem 5.1).

    The implementation is event-driven: call [receive] for every physical
    arrival; the resequencer invokes [deliver] zero or more times,
    re-entering its scan until it must block again. *)

type t

type watchdog = {
  intervals : int;
      (** Declare a channel dead after this many estimated marker
          intervals of silence. *)
  fallback : float;
      (** Marker-interval estimate (seconds) used before the channel's
          cadence has been observed (fewer than two markers received). *)
}
(** Marker-cadence watchdog configuration. The paper assumes member
    channels stay up; this is the operational extension for total
    single-channel failure: markers arrive on every live channel at a
    roughly periodic cadence, so a channel silent for [intervals]
    estimated marker gaps is declared {e dead}. The scan then passes dead
    channels over instead of blocking forever — delivery degrades to
    quasi-FIFO — and any later arrival on the channel revives it, with
    FIFO restored by the marker rule (or the sender's reset barrier, see
    {!Striper.resume_channel}). *)

type overflow =
  | Drop_newest
      (** Refuse the arriving data packet. To the protocol this is
          indistinguishable from a channel loss at the last hop, so the
          marker machinery recovers the stream position — the cheapest
          policy, at the cost of the freshest data. *)
  | Force_flush
      (** Evict buffered data to make room: the scan drains quasi-FIFO
          (blocks become bounded forced skips), and data the scan cannot
          reach — e.g. trapped behind an incomplete reset barrier — is
          popped from the fullest buffer. Markers evicted this way are
          absorbed normally, so their stamps still re-pin the simulation
          and FIFO returns with the next marker interval. Preserves the
          freshest data at the cost of delivering older data out of
          order. *)
(** What to do when a data arrival finds {!create}'s [budget_bytes]
    exhausted. Either way the budget is a hard invariant —
    {!buffered_bytes} never exceeds it — and the resequencer never
    blocks forever on a full buffer. *)

val create :
  deficit:Deficit.t ->
  ?on_credit:(int -> int -> unit) ->
  ?now:(unit -> float) ->
  ?sink:Stripe_obs.Sink.t ->
  ?watchdog:watchdog ->
  ?budget_bytes:int ->
  ?overflow:overflow ->
  ?on_pressure:(high:bool -> unit) ->
  deliver:(channel:int -> Stripe_packet.Packet.t -> unit) ->
  unit ->
  t
(** [create ~deficit ~deliver ()] builds a resequencer simulating the
    given engine, which must be a fresh engine at the sender's initial
    state — use [Deficit.clone_initial] on the sender's. [deliver] is
    called with each packet in logical-reception order, together with the
    channel it was drawn from (as a real implementation would know from
    the buffer it popped — used e.g. for per-channel flow-control
    accounting). [on_credit c k] is invoked when a marker on channel [c]
    piggybacks credit [k].

    [budget_bytes] bounds the {e data} bytes buffered across the
    per-channel queues (markers are always accepted — they are tiny,
    bounded in number by the marker cadence, and carry the
    resynchronization state). An arrival that would exceed the budget is
    handled per [overflow] (default {!Drop_newest}) after a
    [Buffer_overflow] event. [on_pressure] is the backpressure signal
    for a flow-control layer: called with [~high:true] when occupancy
    crosses 3/4 of the budget and [~high:false] when it falls back below
    1/2 (hysteresis, so it fires once per congestion episode).

    [sink] (default {!Stripe_obs.Sink.null}) receives the receiver-side
    observability events — [Enqueue], [Marker_applied], [Skip], [Block],
    [Unblock], [Deliver], [Reset_barrier], [Corrupt_discard],
    [Buffer_overflow] — timestamped by [now] (default constant 0; wire
    it to the simulator clock). *)

val recycle : t -> unit
(** Re-arm this resequencer for a {e fresh} bundle of the same shape,
    in place: the simulated engine reinitializes (suspensions cleared,
    any staged transition dropped), every per-channel buffer is emptied
    {e and} its high-water tracking restarted
    ({!Stripe_packet.Fifo_queue.recycle} — bare [clear] would carry the
    previous bundle's maxima into the next owner's report), and all
    counters return to zero. The [deliver]/[on_credit]/[on_pressure]
    callbacks, sink, clock, watchdog configuration, and byte budget are
    kept: they belong to the pool slot, not the bundle. Steady-state
    allocation-free — this is what lets a bundle pool churn thousands of
    bundles through a fixed set of resequencers. *)

val receive : t -> channel:int -> Stripe_packet.Packet.t -> unit
(** Physical reception of a packet (data or marker) on a channel. Also
    feeds the watchdog: the arrival timestamps the channel (and its
    marker cadence, for markers) and revives it if it was declared
    dead.

    A marker failing its integrity check
    ({!Stripe_packet.Packet.marker_valid}) is discarded and counted in
    {!corrupt_marker_discards} rather than applied: trusting a damaged
    (round, DC) stamp would poison the simulation for a whole marker
    interval, whereas a discarded marker is just a lost marker, which
    Theorem 5.1 already contains.

    A valid marker carrying a {e later sender epoch} than the receiver
    is synchronized to proves the sender crash-restarted (PROTOCOL.md
    §12) and is handled eagerly at arrival: the channel's buffer is
    flushed (pre-crash data can never be placed — counted in
    {!epoch_discards}) and the channel joins the crash reset barrier,
    whether or not this marker is the restart's reset marker — which
    makes recovery robust to losing the reset markers themselves on a
    down channel. The barrier completes once every live channel has seen
    the new epoch; the receiver then reinitializes exactly as for a §5
    reset and re-anchors its round translation on the first new-epoch
    marker. *)

val crash_restart : t -> int
(** Receiver endpoint crash + restart (PROTOCOL.md §12): all protocol
    state — buffers, simulated engine, marker stamps, staged
    transitions, watchdog estimates, epoch knowledge — is lost; the
    lifetime measurement counters survive (they model the operator's
    metrics store, not the endpoint). Returns the number of buffered
    data packets wiped, for conservation accounting. Recovery needs no
    out-of-band signal: the receiver treats the sender's current epoch
    as unknown, so the next ordinary marker on each channel triggers
    that channel's crash-sync and the barrier rebuilds the engine —
    cold recovery costs about one marker interval. Data arriving before
    a channel's first post-restart marker is discarded by that
    crash-sync and counted in {!epoch_discards}. *)

val retune : t -> quanta:int array -> unit
(** Stage the receiver half of a sender retune (PROTOCOL.md §11): the
    simulated engine adopts [quanta] when the next §5 reset barrier
    completes — the sender's {!Striper.retune} fires that barrier, and
    in-flight old-epoch data is still resequenced under the old vector
    it was striped with. Raises [Invalid_argument] on width mismatch,
    an invalid quantum (positivity / [max_packet] precondition), or if
    another transition is already staged. *)

val add_channel : t -> quantum:int -> int
(** Stage the receiver half of {!Striper.add_channel}; returns the new
    channel's index (= old width). The channel starts buffering arrivals
    immediately and the pending barrier waits for its reset marker, but
    the simulated engine only widens when that barrier completes, so the
    old epoch drains under the old shape. *)

val remove_channel : t -> int -> unit
(** Stage the receiver half of {!Striper.remove_channel}. The channel
    keeps receiving and the scan keeps draining it until its goodbye
    reset marker completes the barrier; only then is it spliced out
    (higher channels shift down). Anything still buffered on it at that
    point — possible only for a watchdog-dead channel whose barrier
    completed without it — is discarded with it. *)

val transition_pending : t -> bool
(** Whether a staged retune/add/remove is waiting for its barrier.
    Adaptive policies check this before staging the next step. *)

val quanta : t -> int array
(** The quantum vector the simulated sender engine is currently running
    (a copy; staged transitions are not reflected until adopted). A
    supervisor reconciling the two halves of a bundle compares this
    against the live sender's vector: the halves can diverge when a
    sender crash-restart rebuilds its engine while the receiver still
    runs an adopted retune. *)

val on_transition_adopted : t -> (unit -> unit) -> unit
(** Register a callback fired immediately after a staged transition
    (retune, add, or remove) is adopted at its reset barrier. A plain
    reset with nothing staged does not fire it. The demux layer above
    uses this to switch its channel-index mapping at exactly the point
    in each channel's FIFO stream where the sender's numbering changed:
    frames received before the barrier carry old indices, frames after
    it new ones, and the staged splice realigns the buffers to match.
    One callback per resequencer; a later call replaces the earlier. *)

val tick : t -> unit
(** Re-enter the logical-reception scan without a new arrival. The
    watchdog's dead-channel check is evaluated lazily when the scan
    blocks, so normally any arrival on a live channel drives it; [tick]
    lets a simulator (or a real stack's timer) force the check when no
    traffic is arriving at all. A no-op when nothing can progress. *)

val delivered : t -> int
(** Data packets delivered so far. *)

val pending : t -> int
(** Data packets buffered awaiting logical reception. *)

val blocked_on : t -> int option
(** The channel the receiver is currently waiting on, if any. *)

val skips : t -> int
(** Channel visits skipped by the marker rule [r_c > G]. *)

val watchdog_skips : t -> int
(** Visits of dead channels passed over by the watchdog (each emits a
    [Watchdog_skip] event). Always 0 without a watchdog. *)

val dead_declarations : t -> int
(** Times the watchdog declared a channel dead (a revival followed by a
    new silence counts again). *)

val forced_barriers : t -> int
(** Reset barriers force-adopted because they stopped assembling for
    longer than the watchdog horizon ([intervals] x the worst observed
    marker gap). The generation tag ({!Stripe_packet.Packet.marker.m_gen})
    pairs markers of the same barrier, so this fires only when a
    barrier member's marker was genuinely lost on a dead link; the
    force-adoption breaks that deadlock (reinitialization is
    generation-idempotent, so the cost is a bounded quasi-FIFO
    episode). Always 0 without a watchdog, and in any run where no
    reset marker is lost. *)

val stale_resets : t -> int
(** Reset-marker copies absorbed without parking because their
    (epoch, generation) pair was at or below the last adopted barrier's
    — leftover siblings of a marker that triggered an eager crash-sync,
    or stragglers of a force-adopted barrier. Without this dedupe a
    leftover copy would assemble a phantom barrier that can never
    complete, trapping everything buffered behind it until the
    staleness horizon. Untagged markers (generation 0) are never
    counted here. *)

val channel_dead : t -> int -> bool
(** Whether the watchdog currently considers the channel dead. *)

val markers_seen : t -> int

val resets : t -> int
(** Completed reset barriers (§5 crash recovery): the receiver
    reinitialized after reaching a {!Striper.send_reset} marker on every
    channel. Pre-reset stragglers are delivered best-effort; delivery is
    FIFO again from the first post-reset packet. *)

val round : t -> int
(** The receiver's global round number [G]. *)

val buffer_high_water_packets : t -> int
(** Largest total buffered-packet count observed — how much physical
    reception ran ahead of logical reception (sizes real buffers against
    skew). *)

val buffer_high_water_bytes : t -> int

val buffered_bytes : t -> int
(** Data bytes currently buffered. With [budget_bytes] set this never
    exceeds the budget (the hard invariant of the overflow policies). *)

val max_buffered_bytes : t -> int
(** High-water mark of {!buffered_bytes}. *)

val pressure_high : t -> bool
(** Current state of the backpressure signal (see [on_pressure]; always
    [false] without a budget). *)

val overflows : t -> int
(** Arrivals that found the budget exhausted ([Buffer_overflow]
    events). *)

val overflow_drops : t -> int
(** Data packets refused: every overflow under {!Drop_newest}, plus
    packets larger than the whole budget under {!Force_flush}. *)

val forced_deliveries : t -> int
(** Data packets evicted out of scan order by {!Force_flush}'s fallback
    (a subset of {!delivered}). *)

val corrupt_marker_discards : t -> int
(** Markers discarded for an integrity-check failure. *)

val round_realigns : t -> int
(** Times a marker re-anchored the receiver's round translation. The
    scan normally only {e lags} the sender (blocks and C1 skips), so
    marker rounds pin at or above the receiver's global round; forced
    skips ({!Force_flush}) and watchdog skips advance the receiver's
    round counter without consuming the sender's schedule, leaving every
    later marker numbered below it. Each re-anchor restores one
    consistent translation between the two numberings — without it the
    per-channel phases stay scrambled and delivery remains quasi-FIFO
    {e forever} instead of resynchronizing within a marker interval
    (Theorem 5.1). *)

val epoch_discards : t -> int
(** Data packets discarded as provably stale by the epoch rule: buffered
    ahead of a later-epoch marker on its channel (sender crash), or
    buffered before the first post-restart marker (receiver crash). *)

val crash_syncs : t -> int
(** Completed {e crash} barriers — reset barriers that adopted a new
    sender epoch (a subset of {!resets}). *)

val reorder_depth_max : t -> int
(** Largest arrival reorder depth seen: for each data arrival carrying a
    sequence number, the depth is how far below the highest sequence
    already arrived it lands (0 = arrived in order). This measures the
    cross-channel interleave the striping discipline asks the receiver
    to repair — the discipline-comparison gauge — independent of
    buffering decisions. Reset by {!recycle}; survives
    {!crash_restart} (it models the operator's metrics store). *)

val reorder_depth_samples : t -> int
(** Data arrivals judged by the depth gauge (those with [seq >= 0]). *)

val reorder_depth_percentile : t -> p:float -> int
(** [reorder_depth_percentile t ~p] is the smallest depth [d] such that
    at least a fraction [p] of judged arrivals had depth [<= d].
    Depths are histogrammed exactly up to an internal bound (128);
    deeper samples clamp to {!reorder_depth_max}. [p] must be in
    [(0, 1]]; 0 when nothing has been judged yet. *)

val drain : t -> Stripe_packet.Packet.t list
(** Remove and return all still-buffered data packets, interleaved
    round-robin from the per-channel buffers. Also clears the blocked
    channel ({!blocked_on} returns [None] afterwards) and any recorded
    marker stamps, which described stream positions that no longer exist.
    For end-of-run accounting in finite experiments; not part of the
    protocol. *)
