(** Sprinklers-style randomized variable-size striping (PROTOCOL.md §14).

    The Sprinklers idea: stripe at {e burst} granularity rather than
    packet granularity, and place each burst on a channel chosen by a
    seeded hash of an interleaving counter, with burst sizes proportional
    to channel rates. In CFQ terms this is SRR with two twists:

    - {b Randomized placement}: each round's visit order is an
      independent pseudo-random permutation dealt from
      [(seed, round, width)] ({!Deficit.order}, [Permuted]). Because the
      permutation is a pure function of protocol state, the scheme stays
      causal (§3.1): a receiver holding the seed replays the exact
      sequence of selections and every piece of the implicit-numbering /
      marker / reset-barrier machinery works unchanged.
    - {b Variable-size stripes}: quanta are the SRR rate-proportional
      vector scaled by [stripe_scale], so one visit emits a whole burst
      of consecutive packets on one channel. Within a burst packets ride
      one FIFO wire in order — intra-burst reordering is impossible by
      construction; only inter-burst interleaving needs resequencing.

    Fairness: a round visits every channel exactly once whatever order
    it deals, so Theorem 3.2 holds verbatim with the scaled quanta —
    the bound is [Max + 2 * stripe_scale * Quantum], wider than SRR's by
    exactly the burst factor. That is the Sprinklers trade: coarser
    placement variance in exchange for burst-local FIFO delivery. *)

val default_stripe_scale : int
(** Burst multiplier applied to the SRR quanta by {!for_rates} when
    [stripe_scale] is not given (4). *)

val create : ?max_packet:int -> seed:int -> quanta:int array -> unit -> Deficit.t
(** [create ~seed ~quanta ()] builds the engine: byte cost, overdraw,
    visit order [Permuted seed]. If [max_packet] is given, raises
    [Invalid_argument] unless every quantum is at least [max_packet]
    (the Thm 5.1 marker precondition). The receiver's replay engine is
    {!Deficit.clone_initial}, which carries the seed. *)

val quanta_for_rates :
  ?max_packet:int -> ?stripe_scale:int -> rates_bps:float array ->
  quantum_unit:int -> unit -> int array
(** {!Srr.quanta_for_rates} scaled by [stripe_scale] (default
    {!default_stripe_scale}): stripe quanta proportional to channel
    rate, sized to burst granularity. *)

val for_rates :
  ?max_packet:int -> ?stripe_scale:int -> seed:int ->
  rates_bps:float array -> quantum_unit:int -> unit -> Deficit.t
(** Engine over {!quanta_for_rates}. *)

val fairness_bound : Deficit.t -> int
(** Same as {!Srr.fairness_bound}: [Max + 2 * Quantum] with the scaled
    quanta. *)
