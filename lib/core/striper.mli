(** Sender-side channel striping (the load-sharing half of the protocol).

    A striper wraps a {!Scheduler} and dispatches each data packet pushed
    into it to the channel the scheduler selects, calling the [emit]
    callback — typically wired to a simulated link's [send]. With a CFQ
    scheduler and a {!Marker.policy}, it also interleaves marker packets
    at the policy's positions; markers ride the same channels but are
    invisible to the scheduler's accounting (they are control packets
    outside the data schedule, distinguished on the wire by their
    codepoint).

    The striper never buffers: load sharing has no notion of empty input
    queues (§3.1) — state only advances when a packet is pushed, so any
    offered traffic pattern is handled, not just backlogged sources. *)

type t

val create :
  scheduler:Scheduler.t ->
  ?marker:Marker.policy ->
  ?now:(unit -> float) ->
  ?sink:Stripe_obs.Sink.t ->
  emit:(channel:int -> Stripe_packet.Packet.t -> unit) ->
  unit ->
  t
(** [create ~scheduler ~emit ()] builds a striper. Supplying [~marker]
    requires the scheduler to embed a deficit engine (SRR/RR/GRR); raises
    [Invalid_argument] otherwise. [now] timestamps marker packets
    (defaults to a constant 0).

    [sink] (default {!Stripe_obs.Sink.null}) receives the sender-side
    observability events: [Transmit] for every data packet (with its
    implicit [(round, dc)] stamp under a CFQ scheduler), [Marker_sent] for
    every marker, and [Reset_barrier] when {!send_reset} starts a fresh
    epoch. *)

val push : t -> Stripe_packet.Packet.t -> unit
(** Dispatch one data packet. Raises [Invalid_argument] if handed a
    marker — markers are generated internally. If {e every} channel is
    suspended the packet is dropped instead — counted in
    {!undispatched_drops} and reported as a [Txq_drop] event with no
    channel — never an exception. *)

val suspend_channel : t -> int -> unit
(** Remove a channel from striping (dead member link, administrative
    down): the scheduler skips it and redistributes its load, marker
    batches omit it, and a [Suspend] event is emitted. Idempotent. *)

val resume_channel : t -> ?reset:bool -> int -> unit
(** Return a suspended channel to striping, emitting a [Resume] event.
    With [reset] (the default) a CFQ striper then runs {!send_reset}:
    suspension is invisible to the receiver's simulation, so DC/round
    state must be rebuilt via the §5 reset barrier for FIFO delivery to
    resume. Pass [~reset:false] only when batching several resumptions
    before one explicit {!send_reset}. Idempotent. *)

val suspended_channel : t -> int -> bool

val retune : t -> ?reset:bool -> quanta:int array -> unit -> unit
(** Swap the CFQ engine's quantum vector (same width) — the adaptive
    response to drifting channel capacity (PROTOCOL.md §11). With
    [reset] (the default) the change rides the §5 reset barrier:
    {!Deficit.retune} stages the vector, {!send_reset} adopts it for the
    fresh epoch, and the reset markers carry stamps computed from the
    new quanta, so the peer resynchronizes into the new schedule with
    the Thm 5.1 disturbance bound and needs no other coordination. With
    [~reset:false] the swap happens silently at the sender's next round
    boundary (proportional DC carry-over, no barrier) — only valid when
    the receiver's simulation is retuned identically
    ({!Resequencer.retune}). Raises [Invalid_argument] for a non-CFQ
    scheduler or an invalid vector. *)

val add_channel : t -> quantum:int -> int
(** Grow the bundle by one channel (returned index = old width). The
    engine, per-channel counters, and marker bookkeeping are extended,
    a [Member_add] event is emitted, and {!send_reset} runs so the
    receiver learns the new width from the reset-marker epoch — the
    barrier only completes once a reset marker has arrived on every
    channel, including the newcomer. The [emit] callback must already
    accept the new index when this is called. Requires a CFQ
    scheduler. *)

val remove_channel : t -> int -> unit
(** Shrink the bundle: channel [c] leaves, higher channels shift down
    by one. {!send_reset} runs {e first}, while [c] still exists — its
    reset marker is the channel's goodbye, sequenced behind all its
    in-flight data, so a receiver that staged the matching removal
    ({!Resequencer.remove_channel}) drains it completely before
    adopting the narrower bundle. Then the engine and counters are
    spliced and a [Member_remove] event is emitted. Requires a CFQ
    scheduler; raises [Invalid_argument] when removing the last
    channel. *)

val send_reset : t -> unit
(** Crash-recovery reset (§5): reinitialize the striping state to its
    initial value and emit a {e reset marker} on every channel. Data
    pushed afterwards belongs to the fresh epoch; a {!Resequencer}
    reinitializes once the reset marker has reached it on every channel,
    restoring synchronization regardless of how corrupt the previous
    state was. Requires a CFQ scheduler; raises [Invalid_argument]
    otherwise. *)

val crash_restart : ?quanta:int array -> t -> unit
(** Full endpoint crash + restart (PROTOCOL.md §12): every piece of
    striping state — round pointer, deficits, staged retunes,
    administrative suspensions, marker cadence — is lost and rebuilt
    from cold configuration. [quanta] is the restarted sender's initial
    vector (typically a cold {!Rate_probe} plan); it defaults to the
    engine's current configured vector. The sender's {e epoch} is
    incremented and {!send_reset} announces the new incarnation: because
    every subsequent marker carries the epoch, the receiver joins the
    crash barrier even if the reset markers themselves are lost on a
    down channel. In-flight packets of the old epoch are orphaned — the
    receiver delivers stragglers best-effort and discards what the epoch
    rule proves stale. Emits [Crash] then [Restart] (with [round] = the
    new epoch). Requires a CFQ scheduler. *)

val epoch : t -> int
(** Current sender incarnation: 0 until the first {!crash_restart}.
    Graceful resets (retune / resume / add / remove) do not change it. *)

val pushed_packets : t -> int
val pushed_bytes : t -> int
val markers_sent : t -> int

val undispatched_drops : t -> int
(** Data packets dropped by {!push} because every channel was
    suspended. *)

val channel_packets : t -> int -> int
(** Data packets dispatched to a given channel so far. *)

val channel_bytes : t -> int -> int
(** Data bytes dispatched to a given channel so far — the "bits allocated
    to a channel" of the fairness definition (§3.3), in bytes. *)

val rounds : t -> int option
(** Completed rounds, for CFQ schedulers. *)

val scheduler : t -> Scheduler.t
