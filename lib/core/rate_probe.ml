(* Online per-channel goodput estimation for adaptive striping.

   The probe is fed delivered-byte counts between samples (from link
   feedback, [Transmit] events, or receiver-side accounting — the caller
   chooses the vantage point) and maintains an EWMA of the instantaneous
   rate per channel. [plan] turns fresh estimates into a retune decision:
   the proportional quantum vector for the estimated rates, or [None]
   while every channel is within the hysteresis band of its current
   quantum.

   Measured goodput is a one-sided oracle: a saturated channel reveals
   its true capacity (its queue is backlogged, egress = capacity) while
   an underloaded channel only reveals its offered share. The closed
   loop still converges — an oversubscribed channel keeps measuring
   below its assigned share, so successive retunes shrink its quantum
   until assignment fits capacity, at which point every measurement
   equals the assignment and the hysteresis band holds the vector
   still. *)

type t = {
  mutable n : int;
  alpha : float;
  mutable window_bytes : int array;  (* bytes accounted since last sample *)
  mutable est_bps : float array;  (* EWMA rate estimate; 0 until seeded *)
  mutable last_sample : float;  (* time of the last [sample]; nan before *)
  mutable samples : int;
}

let create ?(alpha = 0.3) ~n () =
  if n <= 0 then invalid_arg "Rate_probe.create: n must be positive";
  if not (alpha > 0.0 && alpha <= 1.0) then
    invalid_arg "Rate_probe.create: alpha must be in (0, 1]";
  {
    n;
    alpha;
    window_bytes = Array.make n 0;
    est_bps = Array.make n 0.0;
    last_sample = Float.nan;
    samples = 0;
  }

let n_channels t = t.n
let samples t = t.samples

let observe t ~channel ~bytes =
  if channel < 0 || channel >= t.n then
    invalid_arg "Rate_probe.observe: bad channel";
  if bytes > 0 then
    t.window_bytes.(channel) <- t.window_bytes.(channel) + bytes

let note_rate t ~channel ~bps =
  if channel < 0 || channel >= t.n then
    invalid_arg "Rate_probe.note_rate: bad channel";
  if bps > 0.0 then
    t.est_bps.(channel) <-
      (if t.est_bps.(channel) <= 0.0 then bps
       else ((1.0 -. t.alpha) *. t.est_bps.(channel)) +. (t.alpha *. bps))

let sample t ~now =
  let dt = now -. t.last_sample in
  (if Float.is_nan t.last_sample || dt <= 0.0 then
     (* First call just anchors the window; no rate can be formed yet. *)
     ()
   else begin
     for c = 0 to t.n - 1 do
       let inst = float_of_int (t.window_bytes.(c) * 8) /. dt in
       (* Seed the EWMA from the first real measurement instead of
          averaging against the 0 start value, which would bias the
          estimate low for 1/alpha windows. *)
       t.est_bps.(c) <-
         (if t.est_bps.(c) <= 0.0 then inst
          else ((1.0 -. t.alpha) *. t.est_bps.(c)) +. (t.alpha *. inst))
     done;
     t.samples <- t.samples + 1
   end);
  Array.fill t.window_bytes 0 t.n 0;
  t.last_sample <- now

let rate_bps t c =
  if c < 0 || c >= t.n then invalid_arg "Rate_probe.rate_bps: bad channel";
  t.est_bps.(c)

let rates t = Array.copy t.est_bps

let reset_channel t c =
  if c < 0 || c >= t.n then
    invalid_arg "Rate_probe.reset_channel: bad channel";
  (* Forget the channel's history entirely: estimate back to the unseeded
     state and the current window emptied. The zero-rate windows observed
     while a channel was suspended decay the EWMA geometrically but never
     clear it, so without this a channel resumed after an outage would
     blend its pre-outage capacity into the first post-resume estimate —
     and a long-dead channel would re-enter with a stale, near-zero
     estimate that [plan] then treats as measured capacity. After the
     reset the next sample seeds the EWMA directly from the first fresh
     measurement (and [plan] withholds retunes until it exists). *)
  t.window_bytes.(c) <- 0;
  t.est_bps.(c) <- 0.0

let reset t =
  (* Endpoint crash (PROTOCOL.md §12): the probe's history dies with the
     sender. Every channel returns to the unseeded state and the window
     anchor is forgotten, so the restarted sender plans its first retune
     only from post-restart measurements — exactly the cold-start
     behavior of a fresh probe, without reallocating. *)
  Array.fill t.window_bytes 0 t.n 0;
  Array.fill t.est_bps 0 t.n 0.0;
  t.last_sample <- Float.nan;
  t.samples <- 0

let add_channel t =
  t.window_bytes <- Array.append t.window_bytes [| 0 |];
  t.est_bps <- Array.append t.est_bps [| 0.0 |];
  t.n <- t.n + 1;
  t.n - 1

let remove_channel t c =
  if c < 0 || c >= t.n then invalid_arg "Rate_probe.remove_channel: bad channel";
  if t.n = 1 then
    invalid_arg "Rate_probe.remove_channel: cannot remove the last channel";
  let splice a =
    Array.init (Array.length a - 1) (fun i -> if i < c then a.(i) else a.(i + 1))
  in
  t.window_bytes <- splice t.window_bytes;
  t.est_bps <- splice t.est_bps;
  t.n <- t.n - 1

let plan ?max_packet ?(band = 0.25) ?min_quantum ?max_quantum ~rates_bps
    ~quanta ~quantum_unit () =
  let n = Array.length quanta in
  if Array.length rates_bps <> n then
    invalid_arg "Rate_probe.plan: rates/quanta width mismatch";
  if band < 0.0 then invalid_arg "Rate_probe.plan: band must be >= 0";
  (* No decision without a full set of estimates: a channel that has not
     delivered anything yet would plan to a degenerate vector. Dead
     channels are the suspension/watchdog machinery's job, not ours. *)
  if Array.exists (fun r -> (not (Float.is_finite r)) || r <= 0.0) rates_bps
  then None
  else begin
    let target =
      Srr.quanta_for_rates ?max_packet ~rates_bps ~quantum_unit ()
    in
    let lo = match min_quantum with Some m -> m | None -> 1 in
    let lo = match max_packet with Some m -> max lo m | None -> lo in
    let target =
      Array.map
        (fun q ->
          let q = max lo q in
          match max_quantum with Some m -> min q m | None -> q)
        target
    in
    let differs = ref false in
    for c = 0 to n - 1 do
      let cur = float_of_int quanta.(c) and tgt = float_of_int target.(c) in
      if Float.abs (tgt -. cur) > band *. cur then differs := true
    done;
    if !differs then Some target else None
  end
