type cost =
  | Bytes
  | Packets

type stamp = { round : int; dc : int }

type event =
  | Begin_visit of { channel : int; round : int; dc : int }
  | Consume of { channel : int; round : int; dc_before : int; dc_after : int }
  | End_visit of { channel : int; round : int; dc : int }
  | New_round of { round : int }
  | Retune of { round : int; old_quanta : int array; new_quanta : int array }

(* [quanta], [n], [dcs], [susp] are mutable so the engine can be retuned
   and resized in place ([retune], [add_channel], [remove_channel],
   [reconfigure]) without invalidating the references other components
   hold. [pending] stages a same-width retune until the next round
   boundary. *)
type t = {
  mutable quanta : int array;
  cost_mode : cost;
  overdraw : bool;
  max_pkt : int option;
  mutable n : int;
  mutable dcs : int array;
  mutable susp : bool array;
  mutable pending : int array option;
  mutable ptr : int;
  mutable g : int;
  mutable serving : bool;
  mutable hook : (event -> unit) option;
}

let create ?(cost = Bytes) ?(overdraw = true) ?max_packet ~quanta () =
  let n = Array.length quanta in
  if n = 0 then invalid_arg "Deficit.create: no channels";
  Array.iter
    (fun q -> if q <= 0 then invalid_arg "Deficit.create: quantum must be positive")
    quanta;
  (match max_packet with
  | Some m when m <= 0 ->
    invalid_arg "Deficit.create: max_packet must be positive"
  | Some _ | None -> ());
  {
    quanta = Array.copy quanta;
    cost_mode = cost;
    overdraw;
    max_pkt = max_packet;
    n;
    dcs = Array.make n 0;
    susp = Array.make n false;
    pending = None;
    ptr = 0;
    g = 0;
    serving = false;
    hook = None;
  }

let clone_initial t =
  create ~cost:t.cost_mode ~overdraw:t.overdraw ?max_packet:t.max_pkt
    ~quanta:t.quanta ()

(* Call sites guard on [t.hook] before building the event: constructing
   the record argument allocates even when nobody is listening, and
   select/consume sit on the per-packet path. *)
let emit t ev = match t.hook with None -> () | Some f -> f ev

let validate_quanta ~who ~max_pkt quanta =
  Array.iter
    (fun q ->
      if q <= 0 then invalid_arg (who ^ ": quantum must be positive");
      match max_pkt with
      | Some m when q < m ->
        invalid_arg
          (Printf.sprintf
             "%s: quantum %d below max packet size %d violates the \
              marker-recovery precondition (Quantum_i >= Max)"
             who q m)
      | _ -> ())
    quanta

(* Swap the quantum vector in place. Only called at a round boundary
   (pointer at 0, no visit in progress) or from [reinit], where every DC
   is zero. At a boundary each DC is pure carried surplus/deficit
   (|DC| < old quantum under overdraw), so it is rescaled proportionally:
   the penalty a channel owes keeps the same fraction of its per-round
   grant, which is what preserves the Thm 3.2 fairness bound
   [Max + 2*Quantum] across the transition. *)
let apply_retune t q =
  let old = t.quanta in
  for c = 0 to t.n - 1 do
    if t.dcs.(c) <> 0 then t.dcs.(c) <- t.dcs.(c) * q.(c) / old.(c)
  done;
  t.quanta <- Array.copy q;
  if t.hook <> None then
    emit t (Retune { round = t.g; old_quanta = old; new_quanta = Array.copy q })

(* Suspension is operational state (the channel is down), not protocol
   state: a reset barrier rebuilds rounds and DCs but does not revive a
   dead channel, so [reinit] leaves the flags alone. [clone_initial] does
   not copy them either — a receiver simulating the sender starts from
   the algorithmic initial state. A staged retune is adopted here: the
   reset barrier is a round boundary by construction (round 0, zero DCs),
   so a retune that rides a reset takes effect for the new epoch. *)
let reinit t =
  Array.fill t.dcs 0 t.n 0;
  t.ptr <- 0;
  t.g <- 0;
  t.serving <- false;
  match t.pending with
  | None -> ()
  | Some q ->
    t.pending <- None;
    apply_retune t q

let n_channels t = t.n
let quanta t = Array.copy t.quanta
let cost t = t.cost_mode
let max_packet t = t.max_pkt
let round t = t.g
let current t = t.ptr
let in_service t = t.serving
let dc t c = t.dcs.(c)
let set_dc t c v = t.dcs.(c) <- v
let set_round t g = t.g <- g
let set_hook t hook = t.hook <- hook
let cost_of t size = match t.cost_mode with Bytes -> size | Packets -> 1

let begin_visit t =
  if not t.serving then begin
    t.dcs.(t.ptr) <- t.dcs.(t.ptr) + t.quanta.(t.ptr);
    t.serving <- true;
    if t.hook <> None then
      emit t (Begin_visit { channel = t.ptr; round = t.g; dc = t.dcs.(t.ptr) })
  end

let advance t =
  if t.hook <> None then
    emit t (End_visit { channel = t.ptr; round = t.g; dc = t.dcs.(t.ptr) });
  t.serving <- false;
  t.ptr <- t.ptr + 1;
  if t.ptr = t.n then begin
    t.ptr <- 0;
    t.g <- t.g + 1;
    if t.hook <> None then emit t (New_round { round = t.g });
    match t.pending with
    | None -> ()
    | Some q ->
      (* The pointer wrap is the round boundary a staged retune waits
         for: every channel has finished its visit for round [g - 1]. *)
      t.pending <- None;
      apply_retune t q
  end

let suspended t c =
  if c < 0 || c >= t.n then invalid_arg "Deficit.suspended: bad channel";
  t.susp.(c)

let n_active t =
  Array.fold_left (fun acc s -> if s then acc else acc + 1) 0 t.susp

(* Not [Array.exists not]: stdlib [Array.exists] allocates a closure for
   its inner loop on every call, and this runs once or twice per packet
   (via [select] and the striper's dispatchability check). A top-level
   recursion is static. *)
let rec any_active_from susp i =
  i < Array.length susp && ((not susp.(i)) || any_active_from susp (i + 1))

let any_active t = any_active_from t.susp 0

let suspend t c =
  if c < 0 || c >= t.n then invalid_arg "Deficit.suspend: bad channel";
  if not t.susp.(c) then begin
    t.susp.(c) <- true;
    (* If the pointer is parked on the channel being suspended, move it
       on so the next selection never serves a suspended channel. *)
    if t.ptr = c && any_active t then advance t
  end

let resume t c =
  if c < 0 || c >= t.n then invalid_arg "Deficit.resume: bad channel";
  if t.susp.(c) then begin
    t.susp.(c) <- false;
    (* The frozen DC predates the suspension: replaying it would over- or
       under-serve the channel by up to a quantum relative to the Thm 3.2
       bound, against channels that kept accumulating service while it
       was out. A resumed channel re-enters with a clean slate. *)
    t.dcs.(c) <- 0
  end

let at_round_boundary t = t.ptr = 0 && not t.serving

let retune t ~quanta =
  if Array.length quanta <> t.n then
    invalid_arg
      "Deficit.retune: quanta length must match n_channels (resize with \
       add_channel/remove_channel)";
  validate_quanta ~who:"Deficit.retune" ~max_pkt:t.max_pkt quanta;
  if at_round_boundary t then apply_retune t quanta
  else t.pending <- Some (Array.copy quanta)

let pending_retune t = Option.map Array.copy t.pending

let add_channel t ~quantum =
  validate_quanta ~who:"Deficit.add_channel" ~max_pkt:t.max_pkt [| quantum |];
  if t.pending <> None then
    invalid_arg "Deficit.add_channel: a retune is pending";
  (* Appending at the end keeps every existing index, stamp, and the
     pointer position valid. The new channel's index is past the pointer
     for the remainder of the current round iff [ptr < n], which always
     holds — so it is visited for the first time this round, with DC 0,
     exactly like a channel present from the start of the round. *)
  t.quanta <- Array.append t.quanta [| quantum |];
  t.dcs <- Array.append t.dcs [| 0 |];
  t.susp <- Array.append t.susp [| false |];
  t.n <- t.n + 1;
  t.n - 1

let splice a c = Array.init (Array.length a - 1) (fun i -> if i < c then a.(i) else a.(i + 1))

let remove_channel t c =
  if c < 0 || c >= t.n then invalid_arg "Deficit.remove_channel: bad channel";
  if t.n = 1 then
    invalid_arg "Deficit.remove_channel: cannot remove the last channel";
  if t.pending <> None then
    invalid_arg "Deficit.remove_channel: a retune is pending";
  (* If the pointer is parked on [c], end its visit first so the engine
     never serves a channel that no longer exists; [advance] handles the
     wrap (and round increment) if [c] was the last channel. *)
  if t.ptr = c then advance t;
  t.quanta <- splice t.quanta c;
  t.dcs <- splice t.dcs c;
  t.susp <- splice t.susp c;
  t.n <- t.n - 1;
  if t.ptr > c then t.ptr <- t.ptr - 1

let reconfigure t ~quanta =
  if Array.length quanta = 0 then invalid_arg "Deficit.reconfigure: no channels";
  validate_quanta ~who:"Deficit.reconfigure" ~max_pkt:t.max_pkt quanta;
  t.pending <- None;
  if Array.length quanta = t.n then begin
    (* Same width: refill the existing arrays in place. This is the
       bundle-pool recycle path — thousands of short-lived bundles
       re-arm engines on churn, and reallocating three arrays per
       recycle would dominate the teardown cost. *)
    Array.blit quanta 0 t.quanta 0 t.n;
    Array.fill t.dcs 0 t.n 0;
    Array.fill t.susp 0 t.n false
  end
  else begin
    t.quanta <- Array.copy quanta;
    t.n <- Array.length quanta;
    t.dcs <- Array.make t.n 0;
    t.susp <- Array.make t.n false
  end;
  t.ptr <- 0;
  t.g <- 0;
  t.serving <- false

let rec select t =
  if not t.overdraw then
    invalid_arg "Deficit.select: non-overdraw engine needs select_for";
  if not (any_active t) then
    invalid_arg "Deficit.select: all channels suspended";
  if t.susp.(t.ptr) then begin
    (* Suspended channels are passed over without receiving a quantum:
       their DC freezes until a reset barrier rebuilds the state. *)
    advance t;
    select t
  end
  else begin
    begin_visit t;
    if t.dcs.(t.ptr) > 0 then t.ptr
    else begin
      advance t;
      select t
    end
  end

let rec select_for t ~size =
  if t.overdraw then select t
  else begin
    if not (any_active t) then
      invalid_arg "Deficit.select_for: all channels suspended";
    if t.susp.(t.ptr) then begin
      advance t;
      select_for t ~size
    end
    else begin
      begin_visit t;
      if t.dcs.(t.ptr) >= cost_of t size then t.ptr
      else begin
        advance t;
        select_for t ~size
      end
    end
  end

let consume t ~size =
  if not t.serving then
    invalid_arg "Deficit.consume: no visit in progress (call select first)";
  let before = t.dcs.(t.ptr) in
  let after = before - cost_of t size in
  t.dcs.(t.ptr) <- after;
  if t.hook <> None then
    emit t
      (Consume { channel = t.ptr; round = t.g; dc_before = before; dc_after = after });
  if after <= 0 then advance t

let next_stamp t c =
  if c < 0 || c >= t.n then invalid_arg "Deficit.next_stamp: bad channel";
  if t.serving && c = t.ptr && t.dcs.(c) > 0 then { round = t.g; dc = t.dcs.(c) }
  else begin
    (* Determine the first round in which channel [c] will be visited
       again, then simulate quantum additions until its DC is positive —
       mirroring [select]'s skipping of deeply negative channels. *)
    let first_round =
      if c > t.ptr then t.g
      else if c = t.ptr && not t.serving then t.g
      else t.g + 1
    in
    let rec settle r dc_val =
      let dc_val = dc_val + t.quanta.(c) in
      if dc_val > 0 then { round = r; dc = dc_val } else settle (r + 1) dc_val
    in
    settle first_round t.dcs.(c)
  end

let pp_state fmt t =
  Format.fprintf fmt "ptr=%d round=%d serving=%b dcs=[%s]" t.ptr t.g t.serving
    (String.concat "; " (Array.to_list (Array.map string_of_int t.dcs)))
