type cost =
  | Bytes
  | Packets

type order =
  | Fixed
  | Permuted of int

type stamp = { round : int; dc : int }

type event =
  | Begin_visit of { channel : int; round : int; dc : int }
  | Consume of { channel : int; round : int; dc_before : int; dc_after : int }
  | End_visit of { channel : int; round : int; dc : int }
  | New_round of { round : int }
  | Retune of { round : int; old_quanta : int array; new_quanta : int array }

(* [quanta], [n], [dcs], [susp] are mutable so the engine can be retuned
   and resized in place ([retune], [add_channel], [remove_channel],
   [reconfigure]) without invalidating the references other components
   hold. [pending] stages a same-width retune until the next round
   boundary.

   [ptr] is a POSITION in the round's visit order, not a channel id;
   [perm.(ptr)] is the channel under the pointer. Under [Fixed] order
   [perm] is the identity, so position and channel coincide — the
   classic round robin. Under [Permuted seed] each round's visit order
   is a fresh pseudo-random permutation derived purely from
   (seed, round, n), which is what makes the scheme causal: a receiver
   cloning the engine deals the identical order with no shared RNG
   state (Sprinklers-style randomized striping, PROTOCOL.md §14). *)
type t = {
  mutable quanta : int array;
  cost_mode : cost;
  overdraw : bool;
  max_pkt : int option;
  visit_order : order;
  mutable n : int;
  mutable dcs : int array;
  mutable susp : bool array;
  mutable pending : int array option;
  mutable perm : int array;
  mutable ptr : int;
  mutable g : int;
  mutable serving : bool;
  mutable hook : (event -> unit) option;
}

(* SplitMix64 finalizer: the avalanche that turns (seed, round) into an
   independent shuffle stream per round. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let golden = 0x9e3779b97f4a7c15L

(* Deal the visit order for the current round. A pure function of
   (seed, round, width): [reinit] and [set_round] land on exactly the
   permutation a fresh engine at that round would use, and the
   receiver's replay engine needs no RNG state beyond the seed. Fixed
   order keeps the identity (resized lazily on membership change). *)
let refresh_perm t =
  match t.visit_order with
  | Fixed ->
    if Array.length t.perm <> t.n then t.perm <- Array.init t.n (fun i -> i)
  | Permuted seed ->
    if Array.length t.perm <> t.n then t.perm <- Array.init t.n (fun i -> i)
    else for i = 0 to t.n - 1 do t.perm.(i) <- i done;
    let state =
      ref (mix64 (Int64.add (Int64.mul (Int64.of_int seed) golden)
                    (Int64.of_int t.g)))
    in
    for i = t.n - 1 downto 1 do
      state := mix64 (Int64.add !state golden);
      (* Top 31 bits: always a non-negative OCaml int (Int64.to_int
         truncates to 63 bits, so masking with Int64.max_int can still
         come out negative). *)
      let j = Int64.to_int (Int64.shift_right_logical !state 33) mod (i + 1) in
      let tmp = t.perm.(i) in
      t.perm.(i) <- t.perm.(j);
      t.perm.(j) <- tmp
    done

(* Channel under the pointer. *)
let chan t = t.perm.(t.ptr)

(* Position of channel [c] in the current round's visit order. Linear:
   only off the per-packet path (marker stamping), and [n] is small. *)
let pos_of t c =
  let rec go i = if t.perm.(i) = c then i else go (i + 1) in
  go 0

let create ?(cost = Bytes) ?(overdraw = true) ?max_packet ?(order = Fixed)
    ~quanta () =
  let n = Array.length quanta in
  if n = 0 then invalid_arg "Deficit.create: no channels";
  Array.iter
    (fun q -> if q <= 0 then invalid_arg "Deficit.create: quantum must be positive")
    quanta;
  (match max_packet with
  | Some m when m <= 0 ->
    invalid_arg "Deficit.create: max_packet must be positive"
  | Some _ | None -> ());
  let t =
    {
      quanta = Array.copy quanta;
      cost_mode = cost;
      overdraw;
      max_pkt = max_packet;
      visit_order = order;
      n;
      dcs = Array.make n 0;
      susp = Array.make n false;
      pending = None;
      perm = Array.init n (fun i -> i);
      ptr = 0;
      g = 0;
      serving = false;
      hook = None;
    }
  in
  refresh_perm t;
  t

let clone_initial t =
  create ~cost:t.cost_mode ~overdraw:t.overdraw ?max_packet:t.max_pkt
    ~order:t.visit_order ~quanta:t.quanta ()

(* Call sites guard on [t.hook] before building the event: constructing
   the record argument allocates even when nobody is listening, and
   select/consume sit on the per-packet path. *)
let emit t ev = match t.hook with None -> () | Some f -> f ev

let validate_quanta ~who ~max_pkt quanta =
  Array.iter
    (fun q ->
      if q <= 0 then invalid_arg (who ^ ": quantum must be positive");
      match max_pkt with
      | Some m when q < m ->
        invalid_arg
          (Printf.sprintf
             "%s: quantum %d below max packet size %d violates the \
              marker-recovery precondition (Quantum_i >= Max)"
             who q m)
      | _ -> ())
    quanta

(* Swap the quantum vector in place. Only called at a round boundary
   (pointer at 0, no visit in progress) or from [reinit], where every DC
   is zero. At a boundary each DC is pure carried surplus/deficit
   (|DC| < old quantum under overdraw), so it is rescaled proportionally:
   the penalty a channel owes keeps the same fraction of its per-round
   grant, which is what preserves the Thm 3.2 fairness bound
   [Max + 2*Quantum] across the transition. *)
let apply_retune t q =
  let old = t.quanta in
  for c = 0 to t.n - 1 do
    if t.dcs.(c) <> 0 then t.dcs.(c) <- t.dcs.(c) * q.(c) / old.(c)
  done;
  t.quanta <- Array.copy q;
  if t.hook <> None then
    emit t (Retune { round = t.g; old_quanta = old; new_quanta = Array.copy q })

(* Suspension is operational state (the channel is down), not protocol
   state: a reset barrier rebuilds rounds and DCs but does not revive a
   dead channel, so [reinit] leaves the flags alone. [clone_initial] does
   not copy them either — a receiver simulating the sender starts from
   the algorithmic initial state. A staged retune is adopted here: the
   reset barrier is a round boundary by construction (round 0, zero DCs),
   so a retune that rides a reset takes effect for the new epoch. *)
let reinit t =
  Array.fill t.dcs 0 t.n 0;
  t.ptr <- 0;
  t.g <- 0;
  t.serving <- false;
  refresh_perm t;
  match t.pending with
  | None -> ()
  | Some q ->
    t.pending <- None;
    apply_retune t q

let n_channels t = t.n
let quanta t = Array.copy t.quanta
let cost t = t.cost_mode
let max_packet t = t.max_pkt
let round t = t.g
let current t = chan t
let in_service t = t.serving
let order t = t.visit_order
let dc t c = t.dcs.(c)
let set_dc t c v = t.dcs.(c) <- v

let set_round t g =
  t.g <- g;
  refresh_perm t

let set_hook t hook = t.hook <- hook
let cost_of t size = match t.cost_mode with Bytes -> size | Packets -> 1

let begin_visit t =
  if not t.serving then begin
    let c = chan t in
    t.dcs.(c) <- t.dcs.(c) + t.quanta.(c);
    t.serving <- true;
    if t.hook <> None then
      emit t (Begin_visit { channel = c; round = t.g; dc = t.dcs.(c) })
  end

let advance t =
  if t.hook <> None then begin
    let c = chan t in
    emit t (End_visit { channel = c; round = t.g; dc = t.dcs.(c) })
  end;
  t.serving <- false;
  t.ptr <- t.ptr + 1;
  if t.ptr = t.n then begin
    t.ptr <- 0;
    t.g <- t.g + 1;
    (* Deal the new round's visit order before anyone reads [chan]. *)
    (match t.visit_order with Fixed -> () | Permuted _ -> refresh_perm t);
    if t.hook <> None then emit t (New_round { round = t.g });
    match t.pending with
    | None -> ()
    | Some q ->
      (* The pointer wrap is the round boundary a staged retune waits
         for: every channel has finished its visit for round [g - 1]. *)
      t.pending <- None;
      apply_retune t q
  end

let suspended t c =
  if c < 0 || c >= t.n then invalid_arg "Deficit.suspended: bad channel";
  t.susp.(c)

let n_active t =
  Array.fold_left (fun acc s -> if s then acc else acc + 1) 0 t.susp

(* Not [Array.exists not]: stdlib [Array.exists] allocates a closure for
   its inner loop on every call, and this runs once or twice per packet
   (via [select] and the striper's dispatchability check). A top-level
   recursion is static. *)
let rec any_active_from susp i =
  i < Array.length susp && ((not susp.(i)) || any_active_from susp (i + 1))

let any_active t = any_active_from t.susp 0

let suspend t c =
  if c < 0 || c >= t.n then invalid_arg "Deficit.suspend: bad channel";
  if not t.susp.(c) then begin
    t.susp.(c) <- true;
    (* If the pointer is parked on the channel being suspended, move it
       on so the next selection never serves a suspended channel. *)
    if chan t = c && any_active t then advance t
  end

let resume t c =
  if c < 0 || c >= t.n then invalid_arg "Deficit.resume: bad channel";
  if t.susp.(c) then begin
    t.susp.(c) <- false;
    (* The frozen DC predates the suspension: replaying it would over- or
       under-serve the channel by up to a quantum relative to the Thm 3.2
       bound, against channels that kept accumulating service while it
       was out. A resumed channel re-enters with a clean slate. *)
    t.dcs.(c) <- 0
  end

let at_round_boundary t = t.ptr = 0 && not t.serving

let retune t ~quanta =
  if Array.length quanta <> t.n then
    invalid_arg
      "Deficit.retune: quanta length must match n_channels (resize with \
       add_channel/remove_channel)";
  validate_quanta ~who:"Deficit.retune" ~max_pkt:t.max_pkt quanta;
  if at_round_boundary t then apply_retune t quanta
  else t.pending <- Some (Array.copy quanta)

let pending_retune t = Option.map Array.copy t.pending

let add_channel t ~quantum =
  validate_quanta ~who:"Deficit.add_channel" ~max_pkt:t.max_pkt [| quantum |];
  if t.pending <> None then
    invalid_arg "Deficit.add_channel: a retune is pending";
  (* Appending at the end keeps every existing index, stamp, and the
     pointer position valid. The new channel's index is past the pointer
     for the remainder of the current round iff [ptr < n], which always
     holds — so it is visited for the first time this round, with DC 0,
     exactly like a channel present from the start of the round. *)
  t.quanta <- Array.append t.quanta [| quantum |];
  t.dcs <- Array.append t.dcs [| 0 |];
  t.susp <- Array.append t.susp [| false |];
  t.n <- t.n + 1;
  (* Fixed order: the identity permutation grows and the comment above
     holds verbatim. Permuted order: the round's order is re-dealt over
     the new width — membership changes ride the §5 reset barrier, where
     the engine sits at (ptr = 0, round 0), so sender and receiver
     re-deal identically. *)
  refresh_perm t;
  t.n - 1

let splice a c = Array.init (Array.length a - 1) (fun i -> if i < c then a.(i) else a.(i + 1))

let remove_channel t c =
  if c < 0 || c >= t.n then invalid_arg "Deficit.remove_channel: bad channel";
  if t.n = 1 then
    invalid_arg "Deficit.remove_channel: cannot remove the last channel";
  if t.pending <> None then
    invalid_arg "Deficit.remove_channel: a retune is pending";
  (* If the pointer is parked on [c], end its visit first so the engine
     never serves a channel that no longer exists; [advance] handles the
     wrap (and round increment) if [c] was the position's last. *)
  if chan t = c then advance t;
  t.quanta <- splice t.quanta c;
  t.dcs <- splice t.dcs c;
  t.susp <- splice t.susp c;
  t.n <- t.n - 1;
  (match t.visit_order with
  | Fixed -> if t.ptr > c then t.ptr <- t.ptr - 1
  | Permuted _ ->
    (* Protocol use reaches here only through the §5 reset barrier
       (ptr = 0, round 0); a mid-round removal re-deals the remainder of
       the round over the surviving width. *)
    if t.ptr >= t.n then t.ptr <- t.n - 1;
    refresh_perm t)

let reconfigure t ~quanta =
  if Array.length quanta = 0 then invalid_arg "Deficit.reconfigure: no channels";
  validate_quanta ~who:"Deficit.reconfigure" ~max_pkt:t.max_pkt quanta;
  t.pending <- None;
  if Array.length quanta = t.n then begin
    (* Same width: refill the existing arrays in place. This is the
       bundle-pool recycle path — thousands of short-lived bundles
       re-arm engines on churn, and reallocating three arrays per
       recycle would dominate the teardown cost. *)
    Array.blit quanta 0 t.quanta 0 t.n;
    Array.fill t.dcs 0 t.n 0;
    Array.fill t.susp 0 t.n false
  end
  else begin
    t.quanta <- Array.copy quanta;
    t.n <- Array.length quanta;
    t.dcs <- Array.make t.n 0;
    t.susp <- Array.make t.n false
  end;
  t.ptr <- 0;
  t.g <- 0;
  t.serving <- false;
  refresh_perm t

let rec select t =
  if not t.overdraw then
    invalid_arg "Deficit.select: non-overdraw engine needs select_for";
  if not (any_active t) then
    invalid_arg "Deficit.select: all channels suspended";
  let c = chan t in
  if t.susp.(c) then begin
    (* Suspended channels are passed over without receiving a quantum:
       their DC freezes until a reset barrier rebuilds the state. *)
    advance t;
    select t
  end
  else begin
    begin_visit t;
    if t.dcs.(c) > 0 then c
    else begin
      advance t;
      select t
    end
  end

let rec select_for t ~size =
  if t.overdraw then select t
  else begin
    if not (any_active t) then
      invalid_arg "Deficit.select_for: all channels suspended";
    let c = chan t in
    if t.susp.(c) then begin
      advance t;
      select_for t ~size
    end
    else begin
      begin_visit t;
      if t.dcs.(c) >= cost_of t size then c
      else begin
        advance t;
        select_for t ~size
      end
    end
  end

let consume t ~size =
  if not t.serving then
    invalid_arg "Deficit.consume: no visit in progress (call select first)";
  let c = chan t in
  let before = t.dcs.(c) in
  let after = before - cost_of t size in
  t.dcs.(c) <- after;
  if t.hook <> None then
    emit t
      (Consume { channel = c; round = t.g; dc_before = before; dc_after = after });
  if after <= 0 then advance t

let next_stamp t c =
  if c < 0 || c >= t.n then invalid_arg "Deficit.next_stamp: bad channel";
  if t.serving && c = chan t && t.dcs.(c) > 0 then
    { round = t.g; dc = t.dcs.(c) }
  else begin
    (* Determine the first round in which channel [c] will be visited
       again, then simulate quantum additions until its DC is positive —
       mirroring [select]'s skipping of deeply negative channels. The
       comparison is in visit-order positions, so it holds under a
       permuted order too; later rounds visit every channel exactly once
       whatever their permutation, so only this round's order matters. *)
    let pos = pos_of t c in
    let first_round =
      if pos > t.ptr then t.g
      else if pos = t.ptr && not t.serving then t.g
      else t.g + 1
    in
    let rec settle r dc_val =
      let dc_val = dc_val + t.quanta.(c) in
      if dc_val > 0 then { round = r; dc = dc_val } else settle (r + 1) dc_val
    in
    settle first_round t.dcs.(c)
  end

let pp_state fmt t =
  Format.fprintf fmt "ptr=%d ch=%d round=%d serving=%b dcs=[%s]" t.ptr (chan t)
    t.g t.serving
    (String.concat "; " (Array.to_list (Array.map string_of_int t.dcs)))
