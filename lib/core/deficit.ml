type cost =
  | Bytes
  | Packets

type stamp = { round : int; dc : int }

type event =
  | Begin_visit of { channel : int; round : int; dc : int }
  | Consume of { channel : int; round : int; dc_before : int; dc_after : int }
  | End_visit of { channel : int; round : int; dc : int }
  | New_round of { round : int }

type t = {
  quanta : int array;
  cost_mode : cost;
  overdraw : bool;
  max_pkt : int option;
  n : int;
  dcs : int array;
  susp : bool array;
  mutable ptr : int;
  mutable g : int;
  mutable serving : bool;
  mutable hook : (event -> unit) option;
}

let create ?(cost = Bytes) ?(overdraw = true) ?max_packet ~quanta () =
  let n = Array.length quanta in
  if n = 0 then invalid_arg "Deficit.create: no channels";
  Array.iter
    (fun q -> if q <= 0 then invalid_arg "Deficit.create: quantum must be positive")
    quanta;
  (match max_packet with
  | Some m when m <= 0 ->
    invalid_arg "Deficit.create: max_packet must be positive"
  | Some _ | None -> ());
  {
    quanta = Array.copy quanta;
    cost_mode = cost;
    overdraw;
    max_pkt = max_packet;
    n;
    dcs = Array.make n 0;
    susp = Array.make n false;
    ptr = 0;
    g = 0;
    serving = false;
    hook = None;
  }

let clone_initial t =
  create ~cost:t.cost_mode ~overdraw:t.overdraw ?max_packet:t.max_pkt
    ~quanta:t.quanta ()

(* Suspension is operational state (the channel is down), not protocol
   state: a reset barrier rebuilds rounds and DCs but does not revive a
   dead channel, so [reinit] leaves the flags alone. [clone_initial] does
   not copy them either — a receiver simulating the sender starts from
   the algorithmic initial state. *)
let reinit t =
  Array.fill t.dcs 0 t.n 0;
  t.ptr <- 0;
  t.g <- 0;
  t.serving <- false

let n_channels t = t.n
let quanta t = Array.copy t.quanta
let cost t = t.cost_mode
let max_packet t = t.max_pkt
let round t = t.g
let current t = t.ptr
let in_service t = t.serving
let dc t c = t.dcs.(c)
let set_dc t c v = t.dcs.(c) <- v
let set_round t g = t.g <- g
let set_hook t hook = t.hook <- hook

(* Call sites guard on [t.hook] before building the event: constructing
   the record argument allocates even when nobody is listening, and
   select/consume sit on the per-packet path. *)
let emit t ev = match t.hook with None -> () | Some f -> f ev

let cost_of t size = match t.cost_mode with Bytes -> size | Packets -> 1

let begin_visit t =
  if not t.serving then begin
    t.dcs.(t.ptr) <- t.dcs.(t.ptr) + t.quanta.(t.ptr);
    t.serving <- true;
    if t.hook <> None then
      emit t (Begin_visit { channel = t.ptr; round = t.g; dc = t.dcs.(t.ptr) })
  end

let advance t =
  if t.hook <> None then
    emit t (End_visit { channel = t.ptr; round = t.g; dc = t.dcs.(t.ptr) });
  t.serving <- false;
  t.ptr <- t.ptr + 1;
  if t.ptr = t.n then begin
    t.ptr <- 0;
    t.g <- t.g + 1;
    if t.hook <> None then emit t (New_round { round = t.g })
  end

let suspended t c =
  if c < 0 || c >= t.n then invalid_arg "Deficit.suspended: bad channel";
  t.susp.(c)

let n_active t =
  Array.fold_left (fun acc s -> if s then acc else acc + 1) 0 t.susp

(* Not [Array.exists not]: stdlib [Array.exists] allocates a closure for
   its inner loop on every call, and this runs once or twice per packet
   (via [select] and the striper's dispatchability check). A top-level
   recursion is static. *)
let rec any_active_from susp i =
  i < Array.length susp && ((not susp.(i)) || any_active_from susp (i + 1))

let any_active t = any_active_from t.susp 0

let suspend t c =
  if c < 0 || c >= t.n then invalid_arg "Deficit.suspend: bad channel";
  if not t.susp.(c) then begin
    t.susp.(c) <- true;
    (* If the pointer is parked on the channel being suspended, move it
       on so the next selection never serves a suspended channel. *)
    if t.ptr = c && any_active t then advance t
  end

let resume t c =
  if c < 0 || c >= t.n then invalid_arg "Deficit.resume: bad channel";
  t.susp.(c) <- false

let rec select t =
  if not t.overdraw then
    invalid_arg "Deficit.select: non-overdraw engine needs select_for";
  if not (any_active t) then
    invalid_arg "Deficit.select: all channels suspended";
  if t.susp.(t.ptr) then begin
    (* Suspended channels are passed over without receiving a quantum:
       their DC freezes until a reset barrier rebuilds the state. *)
    advance t;
    select t
  end
  else begin
    begin_visit t;
    if t.dcs.(t.ptr) > 0 then t.ptr
    else begin
      advance t;
      select t
    end
  end

let rec select_for t ~size =
  if t.overdraw then select t
  else begin
    if not (any_active t) then
      invalid_arg "Deficit.select_for: all channels suspended";
    if t.susp.(t.ptr) then begin
      advance t;
      select_for t ~size
    end
    else begin
      begin_visit t;
      if t.dcs.(t.ptr) >= cost_of t size then t.ptr
      else begin
        advance t;
        select_for t ~size
      end
    end
  end

let consume t ~size =
  if not t.serving then
    invalid_arg "Deficit.consume: no visit in progress (call select first)";
  let before = t.dcs.(t.ptr) in
  let after = before - cost_of t size in
  t.dcs.(t.ptr) <- after;
  if t.hook <> None then
    emit t
      (Consume { channel = t.ptr; round = t.g; dc_before = before; dc_after = after });
  if after <= 0 then advance t

let next_stamp t c =
  if c < 0 || c >= t.n then invalid_arg "Deficit.next_stamp: bad channel";
  if t.serving && c = t.ptr && t.dcs.(c) > 0 then { round = t.g; dc = t.dcs.(c) }
  else begin
    (* Determine the first round in which channel [c] will be visited
       again, then simulate quantum additions until its DC is positive —
       mirroring [select]'s skipping of deeply negative channels. *)
    let first_round =
      if c > t.ptr then t.g
      else if c = t.ptr && not t.serving then t.g
      else t.g + 1
    in
    let rec settle r dc_val =
      let dc_val = dc_val + t.quanta.(c) in
      if dc_val > 0 then { round = r; dc = dc_val } else settle (r + 1) dc_val
    in
    settle first_round t.dcs.(c)
  end

let pp_state fmt t =
  Format.fprintf fmt "ptr=%d round=%d serving=%b dcs=[%s]" t.ptr t.g t.serving
    (String.concat "; " (Array.to_list (Array.map string_of_int t.dcs)))
