let check_max_packet ~max_packet quanta =
  match max_packet with
  | None -> ()
  | Some m ->
    Array.iter
      (fun q ->
        if q < m then
          invalid_arg
            (Printf.sprintf
               "Srr.create: quantum %d below max packet size %d violates the \
                marker-recovery precondition (Quantum_i >= Max)"
               q m))
      quanta

let create ?max_packet ~quanta () =
  check_max_packet ~max_packet quanta;
  Deficit.create ~cost:Bytes ~overdraw:true ?max_packet ~quanta ()

let create_uniform ?max_packet ~n ~quantum () =
  if n <= 0 then invalid_arg "Srr.create_uniform: n must be positive";
  create ?max_packet ~quanta:(Array.make n quantum) ()

(* Quanta large enough to overflow this have no physical meaning as byte
   budgets, and [int_of_float] on them is undefined behaviour territory —
   raise with a diagnosis instead of letting garbage through. *)
let max_representable_quantum = float_of_int (1 lsl 50)

let quanta_for_rates ?max_packet ~rates_bps ~quantum_unit () =
  if Array.length rates_bps = 0 then
    invalid_arg "Srr.quanta_for_rates: no channels";
  Array.iter
    (fun r ->
      if (not (Float.is_finite r)) || r <= 0.0 then
        invalid_arg "Srr.quanta_for_rates: rates must be positive and finite")
    rates_bps;
  if quantum_unit <= 0 then
    invalid_arg "Srr.quanta_for_rates: quantum_unit must be positive";
  let slowest = Array.fold_left min rates_bps.(0) rates_bps in
  let quanta =
    (* Rounding the rate ratio can underflow to 0 for extreme skews;
       clamp to the smallest legal quantum. Overflow is an error: past
       [int_of_float]'s domain the "quantum" would be garbage. *)
    Array.map
      (fun r ->
        let q = Float.round (float_of_int quantum_unit *. r /. slowest) in
        if q > max_representable_quantum then
          invalid_arg
            (Printf.sprintf
               "Srr.quanta_for_rates: rate ratio %g cannot be represented as \
                a byte quantum (rate skew too extreme for quantum_unit %d)"
               (r /. slowest) quantum_unit);
        max 1 (int_of_float q))
      rates_bps
  in
  (* A skewed rate vector can round the smallest quantum below
     [max_packet], which would silently violate the Thm 5.1 marker
     precondition (Quantum_i >= Max). Scaling every quantum by a common
     integer factor preserves the bandwidth proportions while restoring
     the precondition — the cost is a proportionally longer round. *)
  match max_packet with
  | Some m ->
    let min_q = Array.fold_left min quanta.(0) quanta in
    if min_q < m then
      let factor = ((m + min_q - 1) / min_q : int) in
      Array.map (fun q -> q * factor) quanta
    else quanta
  | None -> quanta

let for_rates ?max_packet ~rates_bps ~quantum_unit () =
  create ?max_packet
    ~quanta:(quanta_for_rates ?max_packet ~rates_bps ~quantum_unit ())
    ()

let fairness_bound d =
  let quanta = Deficit.quanta d in
  let max_quantum = Array.fold_left max 0 quanta in
  let max_pkt =
    match Deficit.max_packet d with Some m -> m | None -> max_quantum
  in
  max_pkt + (2 * max_quantum)

let strict_drr ~quanta () = Deficit.create ~cost:Bytes ~overdraw:false ~quanta ()
