let check_max_packet ~max_packet quanta =
  match max_packet with
  | None -> ()
  | Some m ->
    Array.iter
      (fun q ->
        if q < m then
          invalid_arg
            (Printf.sprintf
               "Srr.create: quantum %d below max packet size %d violates the \
                marker-recovery precondition (Quantum_i >= Max)"
               q m))
      quanta

let create ?max_packet ~quanta () =
  check_max_packet ~max_packet quanta;
  Deficit.create ~cost:Bytes ~overdraw:true ?max_packet ~quanta ()

let create_uniform ?max_packet ~n ~quantum () =
  if n <= 0 then invalid_arg "Srr.create_uniform: n must be positive";
  create ?max_packet ~quanta:(Array.make n quantum) ()

let for_rates ?max_packet ~rates_bps ~quantum_unit () =
  if Array.length rates_bps = 0 then invalid_arg "Srr.for_rates: no channels";
  Array.iter
    (fun r -> if r <= 0.0 then invalid_arg "Srr.for_rates: rates must be positive")
    rates_bps;
  if quantum_unit <= 0 then invalid_arg "Srr.for_rates: quantum_unit must be positive";
  let slowest = Array.fold_left min rates_bps.(0) rates_bps in
  let quanta =
    (* Rounding the rate ratio can underflow to 0 (or overflow to garbage)
       for extreme skews; clamp to the smallest legal quantum and let
       [create] re-validate the final array. *)
    Array.map
      (fun r ->
        max 1
          (int_of_float (Float.round (float_of_int quantum_unit *. r /. slowest))))
      rates_bps
  in
  create ?max_packet ~quanta ()

let fairness_bound d =
  let quanta = Deficit.quanta d in
  let max_quantum = Array.fold_left max 0 quanta in
  let max_pkt =
    match Deficit.max_packet d with Some m -> m | None -> max_quantum
  in
  max_pkt + (2 * max_quantum)

let strict_drr ~quanta () = Deficit.create ~cost:Bytes ~overdraw:false ~quanta ()
