(** Unified sender-side channel selector.

    A [Scheduler.t] is what the striper consults to dispatch each data
    packet: [choose] picks a channel (possibly looking at the packet, for
    the non-causal baselines), [account] records the dispatch. For the CFQ
    family the scheduler embeds a {!Deficit} engine, which additionally
    enables marker emission and logical reception; for the baselines of
    §2.1 — shortest queue first (Linux EQL), address-based hashing and
    random selection [Bay95] — [deficit] is [None] and no FIFO machinery
    is available, which is precisely the comparison Table 1 draws. *)

type t

val name : t -> string

val causal : t -> bool
(** Whether a receiver can simulate the selection from previously
    delivered packets alone (§3.1). *)

val n_channels : t -> int
(** Current bundle width. For CFQ schedulers this tracks the embedded
    engine, which can grow and shrink live
    ({!Deficit.add_channel}/{!Deficit.remove_channel}); the non-causal
    baselines are fixed-width. *)

val choose : t -> Stripe_packet.Packet.t -> int
(** Channel for the next packet. For CFQ schedulers this is [f(s)] and
    ignores the packet; repeated calls before [account] return the same
    channel. *)

val account : t -> Stripe_packet.Packet.t -> int -> unit
(** [account t pkt c] after dispatching [pkt] to channel [c]; [g(s, p)]
    for CFQ schedulers. *)

val deficit : t -> Deficit.t option
(** The embedded engine for SRR/RR/GRR; enables markers and logical
    reception. [None] for the non-causal baselines. *)

val of_deficit : name:string -> Deficit.t -> t
(** CFQ-family scheduler around an engine. The given engine is used as
    the live state (so hooks installed on it observe the scheduler). *)

val srr : ?max_packet:int -> quanta:int array -> unit -> t
val rr : n:int -> unit -> t
val grr : ratios:int array -> unit -> t

val sprinklers :
  ?max_packet:int -> ?stripe_scale:int -> seed:int ->
  rates_bps:float array -> quantum_unit:int -> unit -> t
(** Sprinklers-style randomized variable-size striping: an SRR engine
    with rate-proportional quanta scaled to burst granularity and a
    per-round permuted visit order dealt from [seed] (see
    {!Sprinklers}). Causal — the embedded engine replays at the
    receiver — so the full marker/resequencer machinery applies. *)

val seeded_rfq : n:int -> seed:int -> t
(** §3.4 randomized fair queuing: every packet lands on a fresh seeded
    draw. Causal in the paper's sense (the receiver shares the seed and
    replays the draws), but engine-less: the quasi-FIFO machinery, which
    replays a {!Deficit} engine, does not apply. *)

val load_aware : ?weights:float array -> debt:(int -> float) -> n:int -> unit -> t
(** Min-load selection (the memec [StripeList] LOAD_AWARE idiom): each
    packet goes to the channel minimizing [debt c /. weight c], where
    [debt] is the caller's oracle for outstanding serialization debt —
    transmit-queue bytes, wire busy horizon ({!Stripe_fleet} exposes
    [wire_busy_until]), or any other load signal the layer can see.
    [weights] (default all 1.0, must be positive) express relative
    channel capacity; swap them live with {!set_weights} when rates are
    retuned. Non-causal: the receiver cannot reconstruct link state. *)

val set_weights : t -> float array -> unit
(** Replace the channel weight vector of a {!load_aware} scheduler in
    place — live load migration on retune, no rebuild, takes effect from
    the next selection. Raises [Invalid_argument] for schedulers without
    weights ({!supports_weights} is [false]), on width mismatch, or on
    non-positive weights. *)

val supports_weights : t -> bool
(** Whether {!set_weights} is available (only {!load_aware}). *)

val random_selection : n:int -> seed:int -> t
(** Random channel per packet (the [Bay95] Random Selection scheme).
    Shares load in expectation; provides no FIFO delivery. Marked
    non-causal: the receiver is not assumed to share the seed. *)

val shortest_queue : queue_bytes:(int -> int) -> n:int -> t
(** Shortest Queue First, as in the Linux EQL serial-line driver: each
    packet goes to the channel whose transmit queue currently holds the
    fewest bytes, per the [queue_bytes] oracle. Non-causal — the selection
    depends on instantaneous queue state the receiver cannot see. *)

val address_hashing : n:int -> t
(** Address-based hashing [Bay95]: the packet's flow label is hashed to a
    channel, so all packets of one flow share a channel. FIFO per flow,
    but no load sharing across packets of a single flow. *)

val suspend_channel : t -> int -> unit
(** Remove a channel from selection (its member link died or was taken
    down administratively): CFQ engines skip it in the rotation without
    granting quanta ({!Deficit.suspend}), redistributing load across the
    survivors; the non-causal baselines remap any choice of a suspended
    channel to the next active one. Idempotent. *)

val resume_channel : t -> int -> unit
(** Return a suspended channel to selection. For CFQ schedulers the
    sender must follow up with the §5 reset barrier so the receiver can
    resynchronize — {!Striper.resume_channel} does both. Idempotent. *)

val suspended : t -> int -> bool

val has_active : t -> bool
(** [false] iff every channel is suspended; {!choose} then raises
    [Invalid_argument], so dispatchers must check first and drop. *)

val reset : t -> t
(** A scheduler with the same configuration at its initial state (fresh
    deficit engine / RNG, no suspensions). *)

val observe : t -> ?now:(unit -> float) -> Stripe_obs.Sink.t -> unit
(** Route the embedded engine's round transitions to an observability
    sink: a [Round] event (with the new round number, timestamped by
    [now]) every time the round-robin pointer wraps, and a per-channel
    [Retune] event (old quantum in [dc], new quantum in [size]) whenever
    a new quantum vector takes effect. Implemented with
    {!Deficit.set_hook}, so it replaces any hook already installed on the
    engine; a no-op for non-CFQ schedulers. *)
