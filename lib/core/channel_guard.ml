open Stripe_packet
module Obs = Stripe_obs

(* Sender side: one sequential tag counter per channel. *)
module Tx = struct
  type t = { tags : int array }

  let create ~n =
    if n <= 0 then invalid_arg "Channel_guard.Tx.create: n must be positive";
    { tags = Array.make n 0 }

  let next_tag t ~channel =
    if channel < 0 || channel >= Array.length t.tags then
      invalid_arg "Channel_guard.Tx.next_tag: bad channel";
    let tag = t.tags.(channel) in
    t.tags.(channel) <- tag + 1;
    tag

  let reset t = Array.fill t.tags 0 (Array.length t.tags) 0
end

(* Receiver side. Per channel: the next tag due, plus a bounded table of
   early arrivals keyed by tag. An entry of [None] is a tag that was
   consumed without a deliverable payload (a checksum-failed marker):
   the stream position must advance past it, but nothing goes
   downstream. *)
type chan = {
  mutable next : int;
  held : (int, Packet.t option) Hashtbl.t;
}

type t = {
  chans : chan array;
  window : int;
  now : unit -> float;
  sink : Obs.Sink.t;
  deliver : channel:int -> Packet.t -> unit;
  mutable n_forwarded : int;
  mutable n_dups : int;
  mutable n_restores : int;
  mutable n_late_releases : int;
  mutable n_corrupt : int;
  mutable n_held : int;
  mutable hw_held : int;
}

let create ~n ?(window = 32) ?(now = fun () -> 0.0) ?(sink = Obs.Sink.null)
    ~deliver () =
  if n <= 0 then invalid_arg "Channel_guard.create: n must be positive";
  if window <= 0 then invalid_arg "Channel_guard.create: window must be > 0";
  {
    chans = Array.init n (fun _ -> { next = 0; held = Hashtbl.create 8 });
    window;
    now;
    sink;
    deliver;
    n_forwarded = 0;
    n_dups = 0;
    n_restores = 0;
    n_late_releases = 0;
    n_corrupt = 0;
    n_held = 0;
    hw_held = 0;
  }

let emit t kind ~channel ~size ~seq =
  if Obs.Sink.active t.sink then
    Obs.Sink.emit t.sink
      (Obs.Event.v ~channel ~size ~seq ~time:(t.now ()) kind)

let forward t ~channel pkt =
  t.n_forwarded <- t.n_forwarded + 1;
  t.deliver ~channel pkt

(* Release every consecutively-held tag starting at [ch.next].
   [restored] classifies the release: [true] when an arrival filled the
   gap and tag order is genuinely repaired (these are the
   [Reorder_restore] events), [false] when the guard abandoned the gap
   (window shed, teardown flush) — those packets leave the guard with
   their predecessors declared lost, and it is the {e downstream}
   delivery gauge that judges them (watchdog-skipped channels deliver
   them late). Counting them as restores too would book the same packet
   in both columns. *)
let release_ready t ~restored ~channel ch =
  let continue = ref true in
  while !continue do
    match Hashtbl.find_opt ch.held ch.next with
    | None -> continue := false
    | Some entry ->
      Hashtbl.remove ch.held ch.next;
      ch.next <- ch.next + 1;
      t.n_held <- t.n_held - 1;
      (match entry with
      | Some pkt ->
        if restored then begin
          t.n_restores <- t.n_restores + 1;
          emit t Obs.Event.Reorder_restore ~channel ~size:pkt.Packet.size
            ~seq:pkt.Packet.seq
        end
        else t.n_late_releases <- t.n_late_releases + 1;
        forward t ~channel pkt
      | None -> ())
  done

(* The hold window overflowed: the oldest gap will not be waited for any
   longer. Declare everything up to the smallest held tag lost and
   release from there, repeating until the channel is back inside its
   window. Degrades reordering-plus-loss to plain loss, which the
   resequencer's marker machinery already contains. *)
let shed_overflow t ~channel ch =
  while Hashtbl.length ch.held > t.window do
    let smallest =
      Hashtbl.fold (fun tag _ acc -> min tag acc) ch.held max_int
    in
    ch.next <- smallest;
    release_ready t ~restored:false ~channel ch
  done

let receive t ~channel ~tag pkt =
  if channel < 0 || channel >= Array.length t.chans then
    invalid_arg "Channel_guard.receive: bad channel";
  if tag < 0 then invalid_arg "Channel_guard.receive: negative tag";
  let ch = t.chans.(channel) in
  (* Integrity first: a marker whose checksum does not match was damaged
     in flight. Its tag still advances the stream position — the damage
     hit the payload, not the shim header carrying the tag. *)
  let entry =
    if Packet.is_marker pkt && not (Packet.marker_valid (Packet.get_marker pkt))
    then begin
      t.n_corrupt <- t.n_corrupt + 1;
      emit t Obs.Event.Corrupt_discard ~channel ~size:pkt.Packet.size
        ~seq:pkt.Packet.seq;
      None
    end
    else Some pkt
  in
  if tag < ch.next || Hashtbl.mem ch.held tag then begin
    (* Already released (or its gap already declared lost), or a second
       copy of a packet still being held: discard. *)
    t.n_dups <- t.n_dups + 1;
    emit t Obs.Event.Dup_discard ~channel ~size:pkt.Packet.size
      ~seq:pkt.Packet.seq
  end
  else if tag = ch.next then begin
    ch.next <- ch.next + 1;
    (match entry with Some pkt -> forward t ~channel pkt | None -> ());
    if Hashtbl.length ch.held > 0 then
      release_ready t ~restored:true ~channel ch
  end
  else begin
    Hashtbl.replace ch.held tag entry;
    t.n_held <- t.n_held + 1;
    if t.n_held > t.hw_held then t.hw_held <- t.n_held;
    shed_overflow t ~channel ch
  end

(* Pool-recycle reset: drop everything held (the old bundle's stream is
   gone — releasing it to the new owner would interleave two bundles)
   and restart every channel's tags and all counters. The deliver
   callback and sink are slot state and are kept. *)
let recycle t =
  Array.iter
    (fun ch ->
      ch.next <- 0;
      Hashtbl.reset ch.held)
    t.chans;
  t.n_forwarded <- 0;
  t.n_dups <- 0;
  t.n_restores <- 0;
  t.n_late_releases <- 0;
  t.n_corrupt <- 0;
  t.n_held <- 0;
  t.hw_held <- 0

let flush t =
  Array.iteri
    (fun channel ch ->
      while Hashtbl.length ch.held > 0 do
        let smallest =
          Hashtbl.fold (fun tag _ acc -> min tag acc) ch.held max_int
        in
        ch.next <- smallest;
        release_ready t ~restored:false ~channel ch
      done)
    t.chans

let forwarded t = t.n_forwarded
let dup_discards t = t.n_dups
let reorder_restores t = t.n_restores
let late_releases t = t.n_late_releases
let corrupt_discards t = t.n_corrupt
let held_packets t = t.n_held
let max_held_packets t = t.hw_held
