(** Marker packet emission policy (§5, §6.3).

    The sender periodically sends a marker packet on {e each} channel
    carrying the implicit packet number — round number and deficit counter
    — of the next data packet to be sent on that channel. Markers are
    control packets distinguished from data by a link-level codepoint;
    data packets are never modified.

    Two knobs matter experimentally (§6.3): the {e frequency} (markers
    every [every_rounds] rounds — higher frequency shrinks the window of
    out-of-order delivery after a loss) and the {e position} of emission
    within a round — the paper measured the fewest out-of-order deliveries
    with markers at the beginning or end of a round, and recommends the
    end. Optionally each marker piggybacks a flow-control credit for its
    channel (the FCVC scheme of [KC93], §6.3). *)

type position =
  | Round_start
      (** Markers for all channels are emitted together, just before the
          first data packet of a marked round is dispatched. *)
  | Mid_round
      (** The marker for channel [c] is emitted as soon as [c]'s service
          visit in a marked round completes, staggering markers across the
          round. *)
  | Round_end
      (** Markers for all channels are emitted together, immediately after
          the last data packet of a marked round. *)

type policy = {
  every_rounds : int;  (** Emit markers every this many rounds; >= 1. *)
  position : position;
  credit_of : (int -> int) option;
      (** Per-channel credit to piggyback, if flow control is active. *)
}

val default : policy
(** Every 4 rounds, at the round end (the position the paper found best),
    no credits. *)

val make : ?credit_of:(int -> int) -> ?position:position -> every_rounds:int -> unit -> policy

val packet_for :
  ?epoch:int -> ?gen:int -> policy -> deficit:Deficit.t -> channel:int ->
  now:float -> Stripe_packet.Packet.t
(** Build the marker packet for [channel] from the sender's current
    engine state: it carries [Deficit.next_stamp deficit channel] and the
    channel's credit if the policy supplies one. [epoch] (default [0]) is
    the sender's incarnation number (PROTOCOL.md §12); [gen] (default
    [0]) its reset-barrier generation within the epoch
    ({!Stripe_packet.Packet.marker.m_gen}). *)
