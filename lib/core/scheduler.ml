open Stripe_packet

type t = {
  sched_name : string;
  is_causal : bool;
  n : int;
  choose_fn : Packet.t -> int;
  account_fn : Packet.t -> int -> unit;
  engine : Deficit.t option;
  susp : bool array;
      (* Suspension flags for engine-less schedulers; engine-backed ones
         delegate to the deficit engine, which skips natively. *)
  set_weights_fn : (float array -> unit) option;
      (* Live migration hook: only load-aware selection has per-channel
         weights that can be swapped mid-run. *)
  remake : unit -> t;
}

let name t = t.sched_name
let causal t = t.is_causal

(* Engine-backed schedulers can grow and shrink live
   ([Striper.add_channel]/[remove_channel]), so the width is read from
   the engine rather than frozen at construction. *)
let n_channels t =
  match t.engine with Some d -> Deficit.n_channels d | None -> t.n

let suspended t c =
  if c < 0 || c >= n_channels t then
    invalid_arg "Scheduler.suspended: bad channel";
  match t.engine with
  | Some d -> Deficit.suspended d c
  | None -> t.susp.(c)

let has_active t =
  match t.engine with
  | Some d -> Deficit.any_active d
  | None -> Array.exists not t.susp

let suspend_channel t c =
  if c < 0 || c >= n_channels t then
    invalid_arg "Scheduler.suspend_channel: bad channel";
  match t.engine with
  | Some d -> Deficit.suspend d c
  | None -> t.susp.(c) <- true

let resume_channel t c =
  if c < 0 || c >= n_channels t then
    invalid_arg "Scheduler.resume_channel: bad channel";
  match t.engine with
  | Some d -> Deficit.resume d c
  | None -> t.susp.(c) <- false

let choose t pkt =
  let c = t.choose_fn pkt in
  match t.engine with
  | Some _ -> c (* the engine already skips suspended channels *)
  | None ->
    if not t.susp.(c) then c
    else begin
      (* Non-causal baselines get the simplest redistribution: remap a
         suspended choice to the next active channel. *)
      if not (has_active t) then
        invalid_arg "Scheduler.choose: all channels suspended";
      let rec probe k = if t.susp.(k mod t.n) then probe (k + 1) else k mod t.n in
      probe (c + 1)
    end

let account t pkt c = t.account_fn pkt c
let deficit t = t.engine
let reset t = t.remake ()

let supports_weights t = t.set_weights_fn <> None

let set_weights t weights =
  match t.set_weights_fn with
  | None ->
    invalid_arg
      (Printf.sprintf "Scheduler.set_weights: %s has no channel weights"
         t.sched_name)
  | Some f ->
    if Array.length weights <> n_channels t then
      invalid_arg "Scheduler.set_weights: weight vector width mismatch";
    Array.iter
      (fun w ->
        if (not (Float.is_finite w)) || w <= 0.0 then
          invalid_arg "Scheduler.set_weights: weights must be positive")
      weights;
    f weights

let observe t ?(now = fun () -> 0.0) sink =
  match t.engine with
  | None -> ()
  | Some d ->
    Deficit.set_hook d
      (Some
         (fun ev ->
           match ev with
           | Deficit.New_round { round } ->
             if Stripe_obs.Sink.active sink then
               Stripe_obs.Sink.emit sink
                 (Stripe_obs.Event.v ~round ~time:(now ())
                    Stripe_obs.Event.Round)
           | Deficit.Retune { round; old_quanta; new_quanta } ->
             (* One event per channel: [dc] carries the old quantum,
                [size] the new one. *)
             if Stripe_obs.Sink.active sink then
               for c = 0 to Array.length new_quanta - 1 do
                 Stripe_obs.Sink.emit sink
                   (Stripe_obs.Event.v ~channel:c ~round ~dc:old_quanta.(c)
                      ~size:new_quanta.(c) ~time:(now ())
                      Stripe_obs.Event.Retune)
               done
           | Deficit.Begin_visit _ | Deficit.Consume _ | Deficit.End_visit _
             ->
             ()))

let rec make ?set_weights:sw ~name ~causal ~n ~fresh () =
  let choose_fn, account_fn, engine = fresh () in
  {
    sched_name = name;
    is_causal = causal;
    n;
    choose_fn;
    account_fn;
    engine;
    susp = Array.make n false;
    set_weights_fn = sw;
    remake = (fun () -> make ?set_weights:sw ~name ~causal ~n ~fresh ());
  }

let of_deficit ~name d =
  (* The engine handed in backs the first instance, so callers can install
     hooks on it; [reset] rebuilds a fresh engine at the initial state. *)
  let first = ref (Some d) in
  let fresh () =
    let engine =
      match !first with
      | Some e ->
        first := None;
        e
      | None -> Deficit.clone_initial d
    in
    let choose_fn (_ : Packet.t) = Deficit.select engine in
    let account_fn (pkt : Packet.t) (_ : int) =
      Deficit.consume engine ~size:pkt.size
    in
    (choose_fn, account_fn, Some engine)
  in
  make ~name ~causal:true ~n:(Deficit.n_channels d) ~fresh ()

let srr ?max_packet ~quanta () =
  of_deficit ~name:"SRR" (Srr.create ?max_packet ~quanta ())

let rr ~n () = of_deficit ~name:"RR" (Rr.create ~n ())

let grr ~ratios () = of_deficit ~name:"GRR" (Grr.create ~ratios ())

let random_selection ~n ~seed =
  if n <= 0 then invalid_arg "Scheduler.random_selection: n must be positive";
  let fresh () =
    let rng = Stripe_netsim.Rng.create seed in
    let pending = ref None in
    let choose_fn (_ : Packet.t) =
      match !pending with
      | Some c -> c
      | None ->
        let c = Stripe_netsim.Rng.int rng n in
        pending := Some c;
        c
    in
    let account_fn (_ : Packet.t) (_ : int) = pending := None in
    (choose_fn, account_fn, None)
  in
  make ~name:"Random" ~causal:false ~n ~fresh ()

let shortest_queue ~queue_bytes ~n =
  if n <= 0 then invalid_arg "Scheduler.shortest_queue: n must be positive";
  let fresh () =
    let choose_fn (_ : Packet.t) =
      let best = ref 0 and best_bytes = ref (queue_bytes 0) in
      for c = 1 to n - 1 do
        let b = queue_bytes c in
        if b < !best_bytes then begin
          best := c;
          best_bytes := b
        end
      done;
      !best
    in
    let account_fn (_ : Packet.t) (_ : int) = () in
    (choose_fn, account_fn, None)
  in
  make ~name:"SQF" ~causal:false ~n ~fresh ()

let sprinklers ?max_packet ?stripe_scale ~seed ~rates_bps ~quantum_unit () =
  of_deficit ~name:"Sprinklers"
    (Sprinklers.for_rates ?max_packet ?stripe_scale ~seed ~rates_bps
       ~quantum_unit ())

(* §3.4's randomized fair queuing as a scheduler: every packet lands on
   a fresh seeded draw. Causal — the receiver can replay the stream from
   the shared seed — but engine-less, so the simulator's quasi-FIFO
   machinery (which replays a deficit engine) does not apply; arrival
   order is the delivery order. *)
let seeded_rfq ~n ~seed =
  if n <= 0 then invalid_arg "Scheduler.seeded_rfq: n must be positive";
  let fresh () =
    let rng = Stripe_netsim.Rng.create seed in
    let pending = ref None in
    let choose_fn (_ : Packet.t) =
      match !pending with
      | Some c -> c
      | None ->
        let c = Stripe_netsim.Rng.int rng n in
        pending := Some c;
        c
    in
    let account_fn (_ : Packet.t) (_ : int) = pending := None in
    (choose_fn, account_fn, None)
  in
  make ~name:"RFQ" ~causal:true ~n ~fresh ()

(* Min-load selection in the memec StripeList style: each packet goes to
   the channel with the least outstanding serialization debt, normalized
   by a per-channel weight (its relative rate). [debt] is the caller's
   oracle — queued bytes, wire busy time, whatever the layer can see.
   Weights are mutable via [set_weights] so a retune migrates load live
   instead of rebuilding the scheduler. Non-causal: the selection reads
   link state the receiver cannot reconstruct. *)
let load_aware ?weights ~debt ~n () =
  if n <= 0 then invalid_arg "Scheduler.load_aware: n must be positive";
  let w =
    match weights with
    | None -> Array.make n 1.0
    | Some w ->
      if Array.length w <> n then
        invalid_arg "Scheduler.load_aware: weight vector width mismatch";
      Array.iter
        (fun x ->
          if (not (Float.is_finite x)) || x <= 0.0 then
            invalid_arg "Scheduler.load_aware: weights must be positive")
        w;
      Array.copy w
  in
  let fresh () =
    let choose_fn (_ : Packet.t) =
      let best = ref 0 and best_load = ref (debt 0 /. w.(0)) in
      for c = 1 to n - 1 do
        let l = debt c /. w.(c) in
        if l < !best_load then begin
          best := c;
          best_load := l
        end
      done;
      !best
    in
    let account_fn (_ : Packet.t) (_ : int) = () in
    (choose_fn, account_fn, None)
  in
  make
    ~set_weights:(fun weights -> Array.blit weights 0 w 0 n)
    ~name:"Load-aware" ~causal:false ~n ~fresh ()

let address_hashing ~n =
  if n <= 0 then invalid_arg "Scheduler.address_hashing: n must be positive";
  let fresh () =
    (* Knuth multiplicative hash over the flow label. *)
    let hash flow = (flow * 2654435761) land max_int mod n in
    let choose_fn (pkt : Packet.t) = hash pkt.flow in
    let account_fn (_ : Packet.t) (_ : int) = () in
    (choose_fn, account_fn, None)
  in
  make ~name:"Hash" ~causal:false ~n ~fresh ()
