(** Online per-channel delivered-goodput estimation (PROTOCOL.md §11).

    The paper sizes SRR quanta proportionally to channel bandwidth
    (§3.5) but assumes the bandwidths are known and fixed. A probe
    closes the loop for drifting links: feed it per-channel delivered
    byte counts (link feedback or [Transmit]-event accounting), sample
    it periodically to fold the window into an EWMA rate estimate, and
    ask {!plan} whether the estimates have drifted far enough from the
    current quantum vector to justify a retune
    ({!Striper.retune} / {!Resequencer.retune}).

    Goodput is a one-sided capacity oracle: a backlogged channel reveals
    its true capacity, an underloaded one only its offered share. The
    control loop still converges — an oversubscribed channel measures
    below its assigned share, so each retune shrinks its quantum until
    the assignment fits, after which the hysteresis band holds the
    vector still. *)

type t

val create : ?alpha:float -> n:int -> unit -> t
(** [alpha] is the EWMA gain in (0, 1] (default 0.3): the weight of the
    newest window's instantaneous rate. The first measurement seeds the
    estimate directly. *)

val n_channels : t -> int

val observe : t -> channel:int -> bytes:int -> unit
(** Account [bytes] delivered on [channel] since the last {!sample}.
    Non-positive counts are ignored. *)

val note_rate : t -> channel:int -> bps:float -> unit
(** Fold a direct rate report (e.g. a NIC's link-speed feedback) into
    the channel's EWMA, bypassing the byte-window path. *)

val sample : t -> now:float -> unit
(** Close the current window: convert each channel's accumulated bytes
    over the elapsed time into an instantaneous rate and fold it into
    the EWMA. The first call only anchors the window start. *)

val rate_bps : t -> int -> float
(** Current estimate for a channel; [0.0] until its first sample. *)

val rates : t -> float array

val samples : t -> int
(** Completed sampling windows. *)

val reset_channel : t -> int -> unit
(** Forget one channel's estimate and current window (back to the
    unseeded state; the next {!sample} seeds it directly from the first
    fresh measurement). Call this when a channel is resumed after an
    outage ({!Striper.resume_channel}): the windows observed while it
    was suspended fold zero rates into the EWMA, which decays but never
    clears, so the first post-resume estimate would otherwise blend
    pre-outage samples — and {!plan} would treat the stale blend as
    measured capacity. *)

val reset : t -> unit
(** Forget {e everything}: all channel estimates, the open window, its
    time anchor, and the sample count — a fresh probe of the same width,
    without reallocating. This is the sender crash-restart's cold state
    (PROTOCOL.md §12, {!Striper.crash_restart}): the rebooted endpoint
    has no memory of pre-crash capacity, so it restripes on configured
    quanta until post-restart windows seed new estimates. *)

val add_channel : t -> int
(** Track one more channel (estimate starts empty); returns its index. *)

val remove_channel : t -> int -> unit
(** Stop tracking channel [c]; higher channels shift down by one. *)

val plan :
  ?max_packet:int ->
  ?band:float ->
  ?min_quantum:int ->
  ?max_quantum:int ->
  rates_bps:float array ->
  quanta:int array ->
  quantum_unit:int ->
  unit ->
  int array option
(** Retune decision: the proportional quantum vector
    ({!Srr.quanta_for_rates}) for [rates_bps], clamped into
    [[max min_quantum max_packet, max_quantum]], or [None] if every
    channel's target is within [band] (relative, default 0.25) of its
    current quantum — the hysteresis that keeps estimate noise from
    thrashing the schedule — or if any estimate is still missing
    ([<= 0] or non-finite). Pure: reads nothing from a probe, so it can
    be driven from any rate source. *)
