open Stripe_packet
module Obs = Stripe_obs

type t = {
  sched : Scheduler.t;
  marker : Marker.policy option;
  now : unit -> float;
  sink : Obs.Sink.t;
  emit : channel:int -> Packet.t -> unit;
  mutable n_pushed : int;
  mutable b_pushed : int;
  mutable n_markers : int;
  mutable n_no_channel : int;
      (* Data packets dropped because every channel was suspended. *)
  mutable per_chan_packets : int array;
  mutable per_chan_bytes : int array;
  mutable next_mark_round : int;
      (* First round >= this value triggers the next marker batch
         (Round_start / Round_end positions). *)
  mutable mid_marked : bool array;
      (* Mid_round: which channels already got their marker in the current
         marked round. *)
  mutable mid_round : int;  (* Round the [mid_marked] flags refer to. *)
  mutable epoch : int;
      (* Sender incarnation (PROTOCOL.md §12). Stamped on every marker;
         bumped only by [crash_restart], never by graceful resets. *)
  mutable gen : int;
      (* Reset-barrier generation within the epoch: bumped by every
         [send_reset], stamped on every marker so the receiver can pair
         barrier fragments by generation and discard duplicates from an
         already-adopted one (see [Packet.marker.m_gen]). Restarts at 0
         with each incarnation. *)
}

let create ~scheduler ?marker ?(now = fun () -> 0.0) ?(sink = Obs.Sink.null)
    ~emit () =
  (match marker, Scheduler.deficit scheduler with
  | Some _, None ->
    invalid_arg
      "Striper.create: marker policy requires a CFQ (deficit-based) scheduler"
  | _ -> ());
  let n = Scheduler.n_channels scheduler in
  {
    sched = scheduler;
    marker;
    now;
    sink;
    emit;
    n_pushed = 0;
    b_pushed = 0;
    n_markers = 0;
    n_no_channel = 0;
    per_chan_packets = Array.make n 0;
    per_chan_bytes = Array.make n 0;
    next_mark_round = 0;
    mid_marked = Array.make n false;
    mid_round = -1;
    epoch = 0;
    gen = 0;
  }

let emit_marker t policy d channel =
  let pkt =
    Marker.packet_for ~epoch:t.epoch ~gen:t.gen policy ~deficit:d ~channel
      ~now:(t.now ())
  in
  t.n_markers <- t.n_markers + 1;
  if Obs.Sink.active t.sink then begin
    let m = Packet.get_marker pkt in
    Obs.Sink.emit t.sink
      (Obs.Event.v ~channel ~round:m.Packet.m_round ~dc:m.Packet.m_dc
         ~size:pkt.Packet.size ~time:(t.now ()) Obs.Event.Marker_sent)
  end;
  t.emit ~channel pkt

let emit_marker_batch t policy d =
  for c = 0 to Scheduler.n_channels t.sched - 1 do
    (* Suspended channels get no markers: they receive no quanta, so
       [next_stamp] has nothing truthful to say about them, and the reset
       barrier on resume resynchronizes the receiver anyway. *)
    if not (Scheduler.suspended t.sched c) then emit_marker t policy d c
  done

(* Round-boundary marker batches: trigger once per marked round. *)
let boundary_markers t policy d =
  let r = Deficit.round d in
  if r >= t.next_mark_round then begin
    emit_marker_batch t policy d;
    t.next_mark_round <- ((r / policy.Marker.every_rounds) + 1) * policy.Marker.every_rounds
  end

let mid_round_markers t policy d ~served_channel ~round_of_service =
  if round_of_service mod policy.Marker.every_rounds = 0 then begin
    if t.mid_round <> round_of_service then begin
      Array.fill t.mid_marked 0 (Array.length t.mid_marked) false;
      t.mid_round <- round_of_service
    end;
    if not t.mid_marked.(served_channel) then begin
      t.mid_marked.(served_channel) <- true;
      emit_marker t policy d served_channel
    end
  end

let push t pkt =
  if Packet.is_marker pkt then
    invalid_arg "Striper.push: markers are generated internally";
  if not (Scheduler.has_active t.sched) then begin
    (* Every channel is suspended: there is nowhere to dispatch to. Drop
       the packet like a full transmit queue would — counted and
       observable, never an exception from deep inside a member link. *)
    t.n_no_channel <- t.n_no_channel + 1;
    if Obs.Sink.active t.sink then
      Obs.Sink.emit t.sink
        (Obs.Event.v ~size:pkt.Packet.size ~seq:pkt.Packet.seq
           ~time:(t.now ()) Obs.Event.Txq_drop)
  end
  else begin
  (* Select first: for CFQ schedulers this begins the visit, settling the
     round number the packet belongs to. *)
  let c = Scheduler.choose t.sched pkt in
  (match t.marker, Scheduler.deficit t.sched with
  | Some ({ position = Round_start; _ } as policy), Some d ->
    boundary_markers t policy d
  | Some _, _ | None, _ -> ());
  let round_before =
    match Scheduler.deficit t.sched with
    | Some d -> Deficit.round d
    | None -> 0
  in
  if Obs.Sink.active t.sink then begin
    (* After [choose] the visit has begun, so for CFQ schedulers (round,
       dc) is exactly the implicit packet number this packet carries. *)
    let round, dc =
      match Scheduler.deficit t.sched with
      | Some d -> (Deficit.round d, Deficit.dc d c)
      | None -> (-1, 0)
    in
    Obs.Sink.emit t.sink
      (Obs.Event.v ~channel:c ~round ~dc ~size:pkt.size ~seq:pkt.seq
         ~time:(t.now ()) Obs.Event.Transmit)
  end;
  t.emit ~channel:c pkt;
  t.n_pushed <- t.n_pushed + 1;
  t.b_pushed <- t.b_pushed + pkt.size;
  t.per_chan_packets.(c) <- t.per_chan_packets.(c) + 1;
  t.per_chan_bytes.(c) <- t.per_chan_bytes.(c) + pkt.size;
  Scheduler.account t.sched pkt c;
  (match t.marker, Scheduler.deficit t.sched with
  | Some ({ position = Round_end; _ } as policy), Some d ->
    (* Fire when the account call wrapped into a marked round: the batch
       then follows all data of the completed round. *)
    if Deficit.round d > round_before then boundary_markers t policy d
  | Some ({ position = Mid_round; _ } as policy), Some d ->
    (* Fire for channel [c] as soon as its visit ends mid-round. *)
    if Deficit.current d <> c || not (Deficit.in_service d) then
      mid_round_markers t policy d ~served_channel:c ~round_of_service:round_before
  | Some { position = Round_start; _ }, Some _ -> ()
  | Some _, None | None, _ -> ())
  end

let send_reset t =
  match Scheduler.deficit t.sched with
  | None -> invalid_arg "Striper.send_reset: requires a CFQ scheduler"
  | Some d ->
    Deficit.reinit d;
    t.gen <- t.gen + 1;
    (* Fresh-epoch stamps: every channel's next packet is (0, quantum). *)
    let now = t.now () in
    if Obs.Sink.active t.sink then
      Obs.Sink.emit t.sink (Obs.Event.v ~time:now Obs.Event.Reset_barrier);
    for channel = 0 to Scheduler.n_channels t.sched - 1 do
      let stamp = Deficit.next_stamp d channel in
      let pkt =
        Packet.marker ~reset:true ~epoch:t.epoch ~gen:t.gen ~channel
          ~round:stamp.Deficit.round ~dc:stamp.Deficit.dc ~born:now ()
      in
      t.n_markers <- t.n_markers + 1;
      if Obs.Sink.active t.sink then
        Obs.Sink.emit t.sink
          (Obs.Event.v ~channel ~round:stamp.Deficit.round
             ~dc:stamp.Deficit.dc ~size:pkt.Packet.size ~time:now
             Obs.Event.Marker_sent);
      t.emit ~channel pkt
    done;
    (* Periodic-marker bookkeeping restarts with the epoch. *)
    t.next_mark_round <- 0;
    t.mid_round <- -1;
    Array.fill t.mid_marked 0 (Array.length t.mid_marked) false

let crash_restart ?quanta t =
  match Scheduler.deficit t.sched with
  | None -> invalid_arg "Striper.crash_restart: requires a CFQ scheduler"
  | Some d ->
    let now = t.now () in
    if Obs.Sink.active t.sink then
      Obs.Sink.emit t.sink (Obs.Event.v ~time:now Obs.Event.Crash);
    (* The crash loses every piece of striping state: round pointer,
       deficits, staged retunes, administrative suspensions, marker
       cadence bookkeeping. The restarted sender rebuilds from cold
       configuration — either quanta supplied by the caller (typically a
       cold [Rate_probe] plan) or the nominal configured vector — and
       announces the new incarnation with epoch-stamped reset markers.
       Channels that are actually down get re-suspended by the carrier
       watchers, not by remembered state. *)
    let quanta =
      match quanta with Some q -> q | None -> Array.copy (Deficit.quanta d)
    in
    Deficit.reconfigure d ~quanta;
    t.epoch <- t.epoch + 1;
    t.gen <- 0;
    if Obs.Sink.active t.sink then
      Obs.Sink.emit t.sink
        (Obs.Event.v ~round:t.epoch ~time:now Obs.Event.Restart);
    send_reset t

let epoch t = t.epoch

let retune t ?(reset = true) ~quanta () =
  match Scheduler.deficit t.sched with
  | None -> invalid_arg "Striper.retune: requires a CFQ scheduler"
  | Some d ->
    Deficit.retune d ~quanta;
    (* With [reset] the new vector takes effect through the §5 reset
       barrier: [reinit] adopts the staged quanta, and the reset markers
       below carry fresh-epoch stamps computed from them, so the
       receiver rebuilds directly into the new schedule and Thm 5.1
       bounds the disturbance. Without [reset] the swap happens at the
       next round boundary with proportional DC carry-over, and the
       receiver must be retuned identically ([Resequencer.retune]) to
       keep simulating the sender. *)
    if reset then send_reset t

let add_channel t ~quantum =
  match Scheduler.deficit t.sched with
  | None -> invalid_arg "Striper.add_channel: requires a CFQ scheduler"
  | Some d ->
    let c = Deficit.add_channel d ~quantum in
    t.per_chan_packets <- Array.append t.per_chan_packets [| 0 |];
    t.per_chan_bytes <- Array.append t.per_chan_bytes [| 0 |];
    t.mid_marked <- Array.append t.mid_marked [| false |];
    if Obs.Sink.active t.sink then
      Obs.Sink.emit t.sink
        (Obs.Event.v ~channel:c
           ~size:(Scheduler.n_channels t.sched)
           ~time:(t.now ()) Obs.Event.Member_add);
    (* The receiver learns the new width from the reset markers' epoch:
       the barrier only completes once one has arrived on every channel,
       including the newcomer. *)
    send_reset t;
    c

let remove_channel t c =
  match Scheduler.deficit t.sched with
  | None -> invalid_arg "Striper.remove_channel: requires a CFQ scheduler"
  | Some d ->
    if c < 0 || c >= Scheduler.n_channels t.sched then
      invalid_arg "Striper.remove_channel: bad channel";
    if Scheduler.n_channels t.sched = 1 then
      invalid_arg "Striper.remove_channel: cannot remove the last channel";
    (* Goodbye barrier first, while [c] still exists: its reset marker is
       the last packet the channel carries, sequenced behind all of its
       in-flight data, so a receiver that staged the matching removal
       drains the channel completely before adopting the narrower
       bundle. *)
    send_reset t;
    Deficit.remove_channel d c;
    let splice a =
      Array.init (Array.length a - 1) (fun i ->
          if i < c then a.(i) else a.(i + 1))
    in
    t.per_chan_packets <- splice t.per_chan_packets;
    t.per_chan_bytes <- splice t.per_chan_bytes;
    t.mid_marked <- splice t.mid_marked;
    if Obs.Sink.active t.sink then
      Obs.Sink.emit t.sink
        (Obs.Event.v ~channel:c
           ~size:(Scheduler.n_channels t.sched)
           ~time:(t.now ()) Obs.Event.Member_remove)

let suspend_channel t c =
  if not (Scheduler.suspended t.sched c) then begin
    Scheduler.suspend_channel t.sched c;
    if Obs.Sink.active t.sink then
      Obs.Sink.emit t.sink
        (Obs.Event.v ~channel:c ~time:(t.now ()) Obs.Event.Suspend)
  end

let resume_channel t ?(reset = true) c =
  if Scheduler.suspended t.sched c then begin
    Scheduler.resume_channel t.sched c;
    if Obs.Sink.active t.sink then
      Obs.Sink.emit t.sink
        (Obs.Event.v ~channel:c ~time:(t.now ()) Obs.Event.Resume);
    (* The receiver has been simulating a sender that kept granting
       quanta to the suspended channel — its state is unreconstructible
       from what was delivered. Rebuild both ends from scratch with the
       §5 reset barrier. *)
    if reset && Scheduler.deficit t.sched <> None then send_reset t
  end

let suspended_channel t c = Scheduler.suspended t.sched c

let pushed_packets t = t.n_pushed
let pushed_bytes t = t.b_pushed
let markers_sent t = t.n_markers
let undispatched_drops t = t.n_no_channel
let channel_packets t c = t.per_chan_packets.(c)
let channel_bytes t c = t.per_chan_bytes.(c)

let rounds t = Option.map Deficit.round (Scheduler.deficit t.sched)

let scheduler t = t.sched
