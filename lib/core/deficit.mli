(** Deficit-counter round-robin engine.

    This is the state machine underlying all three round-robin schedulers
    in the paper, in both of their roles (fair queuing and load sharing):

    - {b SRR} (Surplus Round Robin, §3.5): byte cost, byte quanta. A
      channel may {e overdraw} — the deficit counter (DC) goes negative by
      up to one maximum packet — and is penalized by that surplus in the
      next round.
    - {b RR} (ordinary round robin): packet cost, quantum 1 — one packet
      per channel per round.
    - {b GRR} (generalized round robin, §6.2): packet cost, quantum
      [k_i] = the closest integer ratio of channel bandwidths.

    The engine also implements the {e implicit packet numbering} of §5:
    every packet sent while the pointer is at channel [c] is implicitly
    stamped with the pair [(R, D)] — the global round number and the DC
    value immediately before the send. [next_stamp] computes the stamp the
    {e next} data packet on a given channel will carry; this is exactly
    what marker packets transmit.

    State is mutable; an instance is used either by a sender (striping) or
    a receiver (resequencing). The receiver starts from the same initial
    state, which [clone_initial] provides. *)

type cost =
  | Bytes  (** DC counts bytes; packets cost their size. *)
  | Packets  (** DC counts packets; every packet costs 1. *)

type order =
  | Fixed  (** Channels visited in index order every round (classic RR). *)
  | Permuted of int
      (** Each round's visit order is an independent pseudo-random
          permutation derived purely from [(seed, round, width)] — the
          Sprinklers-style randomized stripe placement. Still causal in
          the §3.1 sense: a receiver that knows the seed deals the same
          order with no shared RNG state, so implicit numbering, markers,
          and reset barriers all carry over unchanged. *)

type stamp = { round : int; dc : int }
(** Implicit packet number: round number and DC before the send. *)

type event =
  | Begin_visit of { channel : int; round : int; dc : int }
      (** Quantum just added; [dc] is the post-addition value. *)
  | Consume of { channel : int; round : int; dc_before : int; dc_after : int }
      (** A packet charged to [channel]. *)
  | End_visit of { channel : int; round : int; dc : int }
      (** Pointer moving on; [dc] is the carried surplus/deficit. *)
  | New_round of { round : int }  (** Pointer wrapped; [round] is the new round. *)
  | Retune of { round : int; old_quanta : int array; new_quanta : int array }
      (** A new quantum vector took effect (at a round boundary, or at a
          reset); [round] is the first round served with [new_quanta]. *)

type t

val create :
  ?cost:cost -> ?overdraw:bool -> ?max_packet:int -> ?order:order ->
  quanta:int array -> unit -> t
(** [create ~quanta ()] builds an engine over [Array.length quanta]
    channels. Every quantum must be positive. [cost] defaults to [Bytes];
    [overdraw] defaults to [true] (SRR semantics); [order] defaults to
    [Fixed] and is carried by {!clone_initial}. [max_packet], when
    known, records the largest packet the engine will carry (the [Max] of
    Theorem 3.2's fairness bound); it is carried by {!clone_initial} and
    read back with {!max_packet}. With [overdraw:false]
    the engine behaves like strict DRR: a channel whose DC cannot cover
    the next packet is passed over instead of overdrawing — this variant
    is {e not} usable for logical reception (the selection then depends on
    the packet, making the receiver unable to simulate the sender; see
    §3.1 on non-causal algorithms) and is provided for the fairness
    ablation only. *)

val clone_initial : t -> t
(** Fresh engine with the same configuration, at the initial state. This
    is what a receiver uses to simulate the sender. The event hook is not
    copied. *)

val reinit : t -> unit
(** Reset the engine in place to its initial state (pointer at channel
    0, round 0, all deficit counters 0): the reset step of §5's crash
    recovery. The hook is kept, and so are suspension flags — a reset
    rebuilds protocol state but does not revive a dead channel. *)

val suspend : t -> int -> unit
(** [suspend t c] removes channel [c] from the rotation: [select] and
    [select_for] pass over it without granting a quantum, so its load is
    redistributed across the remaining channels and its DC freezes.
    Suspension is {e not} part of the simulated protocol state — the
    receiver cannot infer it from delivered packets — so a sender that
    suspends and later resumes a channel must resynchronize the receiver
    with the §5 reset barrier (see {!Striper.resume_channel}). If the
    pointer is parked on [c], it moves to the next active channel.
    Idempotent. *)

val resume : t -> int -> unit
(** Return a suspended channel to the rotation, with its DC reset to 0:
    the frozen pre-suspension counter is stale — replaying it would over-
    or under-serve the channel by up to a quantum against peers that kept
    running — so the channel re-enters with a clean slate (the reset
    barrier that normally follows renumbers rounds anyway). Idempotent:
    resuming a channel that is not suspended changes nothing. *)

val suspended : t -> int -> bool

val n_active : t -> int
(** Channels not currently suspended. *)

val any_active : t -> bool
(** [false] iff every channel is suspended, in which case [select] and
    [select_for] raise [Invalid_argument] — callers must check first and
    drop the packet instead. *)

val n_channels : t -> int
val quanta : t -> int array
val cost : t -> cost

val max_packet : t -> int option
(** The maximum packet size declared at {!create}, if any. *)

val round : t -> int
(** Global round number [G]; starts at 0 and increments when the pointer
    wraps from the last channel to the first. *)

val current : t -> int
(** Channel the round-robin pointer is at (under a permuted order, the
    channel the current visit-order position maps to). No side effects. *)

val order : t -> order
(** The visit-order discipline declared at {!create}. *)

val in_service : t -> bool
(** Whether the current channel's visit has begun (quantum added). *)

val dc : t -> int -> int
(** [dc t c] is channel [c]'s deficit counter. *)

val set_dc : t -> int -> int -> unit
(** Force a channel's DC (marker resynchronization at the receiver). *)

val set_round : t -> int -> unit
(** Force the global round number. Fault injection for self-stabilization
    tests (a corrupted [G] is the failure {!Stabilizer} exists to catch);
    no protocol component calls this. *)

val select : t -> int
(** The CFQ selector [f(s)] for overdraw mode: returns the channel the
    next packet must go to, beginning the visit (adding the quantum) if
    needed, and skipping channels whose DC stays non-positive even after
    their quantum (possible only when a quantum is smaller than a packet).
    Idempotent until the next [consume]. Raises [Invalid_argument] in
    non-overdraw mode, where selection needs the packet size — use
    [select_for]. *)

val select_for : t -> size:int -> int
(** Selector for non-overdraw (strict DRR) mode: skips channels whose DC
    cannot cover [size] this round. Also valid in overdraw mode, where it
    ignores [size] and equals [select]. *)

val consume : t -> size:int -> unit
(** The CFQ update [g(s, p)]: charge a packet of [size] bytes to the
    current channel. Decrements the DC by the packet's cost and ends the
    visit when the DC is no longer positive (overdraw mode) — the paper's
    "packets are sent from that queue as long as the DC is positive". In
    non-overdraw mode the visit ends when the DC cannot cover another
    maximal packet only at the next [select_for], so [consume] just
    decrements. Must be preceded by a [select]/[select_for]. *)

val begin_visit : t -> unit
(** Low-level: add the quantum to the current channel if its visit has not
    begun. Exposed for the receiver-side resynchronization logic, which
    must decide whether to skip a channel {e before} granting it a
    quantum. *)

val advance : t -> unit
(** Low-level: end the current visit (whether or not it began) and move
    the pointer to the next channel, incrementing the round on wrap. Used
    by the receiver to skip a channel whose marker round number is ahead
    (§5). *)

val next_stamp : t -> int -> stamp
(** [next_stamp t c] is the implicit number [(R, D)] that the next data
    packet sent on channel [c] will carry, given the current state. This
    accounts for whether [c] has already been served in the current round
    and for any rounds [c] would be skipped while its DC recovers. *)

val at_round_boundary : t -> bool
(** [true] iff the pointer is at channel 0 with no visit in progress —
    the only state in which a retune applies immediately. *)

val retune : t -> quanta:int array -> unit
(** [retune t ~quanta] swaps the quantum vector (same width as the
    engine). If the engine is {!at_round_boundary} the swap happens now;
    otherwise it is staged and adopted at the next pointer wrap (or at
    the next {!reinit}, whichever comes first). On adoption, outstanding
    DCs are rescaled proportionally ([dc * new_q / old_q]) so in-flight
    surplus carries over and cumulative service stays within the Thm 3.2
    bound of an engine configured with the new quanta from the start; a
    [Retune] event with the old and new vectors is emitted. Quanta are
    validated against positivity and, when [max_packet] is known, the
    [quantum >= max_packet] marker precondition (Thm 5.1). Raises
    [Invalid_argument] on width mismatch or invalid quanta. A second
    [retune] before the first is adopted simply replaces the staged
    vector. *)

val pending_retune : t -> int array option
(** The staged quantum vector, if a {!retune} is waiting for the next
    round boundary. *)

val add_channel : t -> quantum:int -> int
(** Append a channel with the given quantum and DC 0, returning its
    index (= the old [n_channels]). Existing indices, stamps, and the
    pointer stay valid; the new channel is visited for the first time in
    the current round. The caller must resynchronize the receiver (the
    striper rides the §5 reset barrier). Raises [Invalid_argument] on an
    invalid quantum or if a retune is pending. *)

val remove_channel : t -> int -> unit
(** Remove channel [c]; channels above [c] shift down by one. If the
    pointer is parked on [c] its visit is ended first ([advance], with
    the usual round increment on wrap). Raises [Invalid_argument] for a
    bad index, when removing the last channel, or if a retune is
    pending. *)

val reconfigure : t -> quanta:int array -> unit
(** Replace the whole configuration: new quantum vector (any width),
    all DCs zero, pointer at 0, round 0, suspensions and any staged
    retune cleared. This is {!reinit} generalized to a new shape — the
    receiver's barrier-time adoption of a sender transition, and the
    bundle pool's engine-recycle primitive. When the width is unchanged
    the existing arrays are refilled in place (allocation-free), so
    recycling an engine across thousands of short-lived bundles costs
    nothing. The hook is kept. *)

val set_hook : t -> (event -> unit) option -> unit
(** Install an observer of engine transitions (used for the Figure 5/6
    golden traces and by the marker emission policy). *)

val pp_state : Format.formatter -> t -> unit
(** One-line state dump: pointer, round, DCs. *)
