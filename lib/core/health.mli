(** Gray-failure detection and self-healing channel management
    (PROTOCOL.md §13).

    A per-channel evidence-fusion engine and hysteresis state machine:

    {v Healthy -> Suspect -> Probation -> Quarantined v}

    Evidence the stack already emits — loss/corrupt/dup counts from the
    channel guard and counters, goodput collapse from {!Rate_probe},
    marker-cadence jitter from the resequencer watchdog — is fed in with
    {!observe} between ticks. Each {!sample} closes one evidence window:
    the window's signals fuse into one badness score in [[0,1]],
    smoothed by EWMA, and each channel's state machine advances with
    hysteresis (a score must stay above the enter line for
    [escalate_windows] consecutive windows to escalate, and below the
    exit line for [recover_windows] to recover).

    The two operational states degrade gracefully rather than killing
    the member. {e Probation} cuts the channel's quantum to
    [probation_frac] of nominal — the caller applies it with
    [Striper.retune]/[Resequencer.retune] so it lands at a round
    boundary — but keeps probe traffic flowing, so the engine retains
    evidence. {e Quarantine} suspends the member outright (the caller
    rides [suspend_channel] and the §5 reset barrier) and is exited
    purely on a timer: after [backoff] seconds the channel returns to
    probation probing, and each flap (re-quarantine before a full
    recovery) multiplies the next backoff by [backoff_factor] up to
    [max_backoff]. A full recovery to healthy resets the schedule.

    The engine decides; the caller applies the returned transitions.
    The one decision the engine refuses is the fatal one: a quarantine
    that would leave no live, unquarantined channel is deferred — the
    {e last-live-channel guard} — and retried as soon as membership
    allows. The always-on liveness monitor
    ({!Stripe_obs.Monitor.create}[ ~live_channels]) independently
    checks the same invariant from the event stream. *)

type state = Healthy | Suspect | Probation | Quarantined

type config = {
  alpha : float;  (** EWMA weight of the newest window's score. *)
  w_loss : float;  (** Weight of the window loss rate. *)
  w_corrupt : float;  (** Weight of the corrupt-discard rate. *)
  w_dup : float;  (** Weight of the duplicate-discard rate. *)
  w_goodput : float;  (** Weight of the goodput shortfall (1 - ratio). *)
  w_jitter : float;
      (** Weight of the marker-cadence stretch ((ratio-1)/3, saturating
          at a 4x gap). *)
  enter_suspect : float;  (** Score at/above which a channel worsens. *)
  enter_quarantine : float;
      (** Score a probation channel must reach to be quarantined. *)
  exit_healthy : float;  (** Score at/below which recovery credit accrues. *)
  escalate_windows : int;  (** Consecutive bad windows per escalation. *)
  recover_windows : int;  (** Consecutive clean windows per recovery. *)
  probation_frac : float;  (** Quantum fraction carried in probation. *)
  base_backoff : float;  (** First quarantine duration, seconds. *)
  backoff_factor : float;  (** Backoff growth per flap. *)
  max_backoff : float;  (** Backoff ceiling, seconds. *)
}

val default_config : config
(** [alpha]=0.4, weights 1.0/0.8/0.3/0.8/0.5, thresholds
    0.25/0.55/0.12, escalate 2, recover 3, probation fraction 0.25,
    backoff 0.25 s doubling to a 4 s ceiling. *)

(** What {!sample} decided for a channel this window. The caller maps
    these onto its striper or pool. *)
type transition =
  | To_suspect of { channel : int }
      (** Evidence crossed the suspect line; no operational change. *)
  | To_probation of { channel : int; from_quarantine : bool }
      (** Cut the channel's quantum to [probation_frac] (at a round
          boundary). [from_quarantine] = this is a timed reinstatement
          probe: also resume the suspended channel (§5 barrier). *)
  | To_quarantine of { channel : int; backoff : float }
      (** Suspend the channel through the §5 barrier; the engine will
          reinstate it to probation [backoff] seconds later. *)
  | To_healthy of { channel : int; from : state }
      (** Restore the channel's full quantum ([from = Probation]) or
          simply clear the suspicion ([from = Suspect]). *)

type t

val create :
  ?config:config ->
  ?live:(int -> bool) ->
  ?sink:Stripe_obs.Sink.t ->
  n:int ->
  unit ->
  t
(** An engine over [n] channels, all initially healthy. [live] is the
    caller's word on whether a channel's link is otherwise usable
    (default: always) — consulted only by the last-live-channel guard.
    [sink] receives [Health_suspect]/[Probation]/[Quarantine]/
    [Reinstate] events as transitions happen. Raises on an invalid
    [config] (thresholds out of order, fractions outside (0,1], ...). *)

val observe :
  t ->
  channel:int ->
  ?sent:int ->
  ?lost:int ->
  ?corrupt:int ->
  ?dup:int ->
  ?goodput_ratio:float ->
  ?cadence_ratio:float ->
  unit ->
  unit
(** Accumulate evidence into the current window. Counts add up;
    [goodput_ratio] (measured/expected, 1 = nominal, 0 = collapsed)
    keeps the window's worst (lowest) observation; [cadence_ratio]
    (observed/expected marker gap, 1 = on time) keeps the worst
    (highest). Evidence against a quarantined channel is discarded at
    the next {!sample} — quarantine exit is purely timed. *)

val sample : t -> now:float -> transition list
(** Close the evidence window: fuse, smooth, and advance every state
    machine; expire due quarantines into probation probes. Returns the
    transitions in channel order. A window with no evidence for a
    channel decays its score toward healthy. *)

val state : t -> int -> state
val score : t -> int -> float
(** The channel's current EWMA badness score in [[0,1]]. *)

val quantum_scale : t -> int -> float
(** The quantum multiplier the channel's state asks for: 1 when
    healthy/suspect, [probation_frac] in probation, 0 quarantined. *)

val flaps : t -> int -> int
(** Quarantine entries since the channel's last full recovery. *)

val quarantine_until : t -> int -> float option
(** When the channel's current quarantine expires, if quarantined. *)

val deferred_quarantines : t -> int
(** Quarantine decisions the last-live-channel guard refused. *)

val n_channels : t -> int

val add_channel : t -> int
(** Append a fresh healthy channel (hot bundle growth); returns its
    index. *)

val remove_channel : t -> int -> unit
(** Forget a channel; higher indices shift down, mirroring
    [Striper.remove_channel]. Raises on the last channel. *)

val reset_channel : t -> int -> unit
(** Back to healthy with no memory (crash restart / recycled slot). *)

val state_name : state -> string

val parse_spec : string -> (config * float option, string) result
(** Parse a [--health] spec: comma-separated [KEY=VALUE] with keys
    [every] (tick interval in seconds, returned separately — driver
    policy, not engine state), [alpha], [suspect], [quarantine],
    [exit], [escalate], [recover], [frac], [backoff], [factor],
    [maxbackoff]; all optional over {!default_config}. Errors are
    position-annotated through {!Stripe_netsim.Spec}. *)
