(* Gray-failure detection: per-channel evidence fusion and the
   Healthy -> Suspect -> Probation -> Quarantined state machine
   (PROTOCOL.md §13).

   The §5/§8 failure machinery handles channels that die — carrier
   loss, marker silence, crashes. This engine handles channels that
   merely get worse: bursty loss, goodput collapse, corrupt-marker
   storms, cadence jitter. Evidence the stack already emits (guard
   discard counts, rate-probe goodput, watchdog cadence) is fed in
   between ticks, fused into one score per channel, EWMA-smoothed, and
   pushed through a hysteresis state machine whose two operational
   states degrade gracefully: probation cuts the member's quantum (the
   caller rides [Deficit.retune] at a round boundary) but keeps probe
   traffic flowing, quarantine suspends the member outright (through
   the §5 reset barrier) and returns it to probation on a timer with
   exponential backoff per flap.

   The engine decides; the caller applies. [sample] returns the
   transitions of one evidence window and the caller maps them onto its
   striper/pool. The one decision the engine refuses to make is the
   fatal one: a quarantine that would leave no live, unquarantined
   channel is deferred (counted in [deferred_quarantines]) — the
   last-live-channel guard. *)

type state = Healthy | Suspect | Probation | Quarantined

type config = {
  alpha : float;
  w_loss : float;
  w_corrupt : float;
  w_dup : float;
  w_goodput : float;
  w_jitter : float;
  enter_suspect : float;
  enter_quarantine : float;
  exit_healthy : float;
  escalate_windows : int;
  recover_windows : int;
  probation_frac : float;
  base_backoff : float;
  backoff_factor : float;
  max_backoff : float;
}

let default_config =
  {
    alpha = 0.4;
    w_loss = 1.0;
    w_corrupt = 0.8;
    w_dup = 0.3;
    w_goodput = 0.8;
    w_jitter = 0.5;
    enter_suspect = 0.25;
    enter_quarantine = 0.55;
    exit_healthy = 0.12;
    escalate_windows = 2;
    recover_windows = 3;
    probation_frac = 0.25;
    base_backoff = 0.25;
    backoff_factor = 2.0;
    max_backoff = 4.0;
  }

let check_config c =
  if not (c.alpha > 0.0 && c.alpha <= 1.0) then
    invalid_arg "Health: alpha must be in (0,1]";
  if c.exit_healthy < 0.0 || c.exit_healthy >= c.enter_suspect then
    invalid_arg "Health: need 0 <= exit_healthy < enter_suspect";
  if c.enter_suspect > c.enter_quarantine then
    invalid_arg "Health: need enter_suspect <= enter_quarantine";
  if c.escalate_windows < 1 || c.recover_windows < 1 then
    invalid_arg "Health: escalate/recover windows must be >= 1";
  if not (c.probation_frac > 0.0 && c.probation_frac <= 1.0) then
    invalid_arg "Health: probation_frac must be in (0,1]";
  if c.base_backoff <= 0.0 || c.max_backoff < c.base_backoff then
    invalid_arg "Health: need 0 < base_backoff <= max_backoff";
  if c.backoff_factor < 1.0 then
    invalid_arg "Health: backoff_factor must be >= 1"

type transition =
  | To_suspect of { channel : int }
  | To_probation of { channel : int; from_quarantine : bool }
  | To_quarantine of { channel : int; backoff : float }
  | To_healthy of { channel : int; from : state }

(* Per-channel record. Window accumulators are cleared by [sample];
   everything else persists across windows. *)
type chan = {
  mutable state : state;
  mutable score : float;  (* EWMA of the fused window scores *)
  mutable bad_streak : int;  (* consecutive windows above the enter line *)
  mutable good_streak : int;  (* consecutive windows below the exit line *)
  mutable flaps : int;  (* quarantines since the last full recovery *)
  mutable until : float;  (* quarantine expiry (absolute time) *)
  (* Current window's evidence. *)
  mutable sent : int;
  mutable lost : int;
  mutable corrupt : int;
  mutable dup : int;
  mutable goodput_ratio : float;  (* nan = no observation *)
  mutable cadence_ratio : float;  (* nan = no observation *)
}

let fresh_chan () =
  {
    state = Healthy;
    score = 0.0;
    bad_streak = 0;
    good_streak = 0;
    flaps = 0;
    until = 0.0;
    sent = 0;
    lost = 0;
    corrupt = 0;
    dup = 0;
    goodput_ratio = Float.nan;
    cadence_ratio = Float.nan;
  }

type t = {
  config : config;
  live : int -> bool;
  sink : Stripe_obs.Sink.t;
  mutable chans : chan array;
  mutable deferred : int;
}

let create ?(config = default_config) ?(live = fun _ -> true)
    ?(sink = Stripe_obs.Sink.null) ~n () =
  if n <= 0 then invalid_arg "Health.create: n must be positive";
  check_config config;
  { config; live; sink; chans = Array.init n (fun _ -> fresh_chan ()); deferred = 0 }

let n_channels t = Array.length t.chans

let chan t c what =
  if c < 0 || c >= Array.length t.chans then
    invalid_arg (Printf.sprintf "Health.%s: bad channel %d" what c);
  t.chans.(c)

let state t c = (chan t c "state").state
let score t c = (chan t c "score").score
let flaps t c = (chan t c "flaps").flaps
let deferred_quarantines t = t.deferred

let quantum_scale t c =
  match (chan t c "quantum_scale").state with
  | Healthy | Suspect -> 1.0
  | Probation -> t.config.probation_frac
  | Quarantined -> 0.0

let quarantine_until t c =
  let ch = chan t c "quarantine_until" in
  match ch.state with Quarantined -> Some ch.until | _ -> None

let add_channel t =
  t.chans <- Array.append t.chans [| fresh_chan () |];
  Array.length t.chans - 1

let remove_channel t c =
  let n = Array.length t.chans in
  if n <= 1 then invalid_arg "Health.remove_channel: last channel";
  ignore (chan t c "remove_channel");
  (* Mirror [Striper.remove_channel]: indices above [c] shift down. *)
  t.chans <-
    Array.init (n - 1) (fun i -> if i < c then t.chans.(i) else t.chans.(i + 1))

let reset_channel t c =
  let ch = chan t c "reset_channel" in
  ch.state <- Healthy;
  ch.score <- 0.0;
  ch.bad_streak <- 0;
  ch.good_streak <- 0;
  ch.flaps <- 0;
  ch.until <- 0.0;
  ch.sent <- 0;
  ch.lost <- 0;
  ch.corrupt <- 0;
  ch.dup <- 0;
  ch.goodput_ratio <- Float.nan;
  ch.cadence_ratio <- Float.nan

let observe t ~channel ?(sent = 0) ?(lost = 0) ?(corrupt = 0) ?(dup = 0)
    ?goodput_ratio ?cadence_ratio () =
  let ch = chan t channel "observe" in
  if sent < 0 || lost < 0 || corrupt < 0 || dup < 0 then
    invalid_arg "Health.observe: negative count";
  ch.sent <- ch.sent + sent;
  ch.lost <- ch.lost + lost;
  ch.corrupt <- ch.corrupt + corrupt;
  ch.dup <- ch.dup + dup;
  (match goodput_ratio with
  | Some r when r >= 0.0 ->
    (* Keep the worst (lowest) goodput observation of the window. *)
    if Float.is_nan ch.goodput_ratio || r < ch.goodput_ratio then
      ch.goodput_ratio <- r
  | Some r -> invalid_arg (Printf.sprintf "Health.observe: goodput_ratio %g" r)
  | None -> ());
  match cadence_ratio with
  | Some r when r >= 0.0 ->
    (* Keep the worst (highest) cadence stretch of the window. *)
    if Float.is_nan ch.cadence_ratio || r > ch.cadence_ratio then
      ch.cadence_ratio <- r
  | Some r -> invalid_arg (Printf.sprintf "Health.observe: cadence_ratio %g" r)
  | None -> ()

let clamp01 x = if x < 0.0 then 0.0 else if x > 1.0 then 1.0 else x

(* Fuse one window's raw evidence into a [0,1] badness score. Count
   rates are taken against the window's sent count (a loss report with
   nothing sent is still fully bad); the goodput penalty is the
   shortfall against expectation; the cadence penalty saturates at a
   4x marker-gap stretch. *)
let window_score cfg ch =
  let denom = float_of_int (max 1 (max ch.sent ch.lost)) in
  let loss = clamp01 (float_of_int ch.lost /. denom) in
  let corrupt = clamp01 (float_of_int ch.corrupt /. denom) in
  let dup = clamp01 (float_of_int ch.dup /. denom) in
  let goodput =
    if Float.is_nan ch.goodput_ratio then 0.0
    else clamp01 (1.0 -. ch.goodput_ratio)
  in
  let jitter =
    if Float.is_nan ch.cadence_ratio then 0.0
    else clamp01 ((ch.cadence_ratio -. 1.0) /. 3.0)
  in
  clamp01
    ((cfg.w_loss *. loss) +. (cfg.w_corrupt *. corrupt) +. (cfg.w_dup *. dup)
    +. (cfg.w_goodput *. goodput)
    +. (cfg.w_jitter *. jitter))

let had_evidence ch =
  ch.sent > 0 || ch.lost > 0 || ch.corrupt > 0 || ch.dup > 0
  || not (Float.is_nan ch.goodput_ratio)
  || not (Float.is_nan ch.cadence_ratio)

let clear_window ch =
  ch.sent <- 0;
  ch.lost <- 0;
  ch.corrupt <- 0;
  ch.dup <- 0;
  ch.goodput_ratio <- Float.nan;
  ch.cadence_ratio <- Float.nan

let emit t ~time kind ~channel ~size ~seq =
  if Stripe_obs.Sink.active t.sink then
    Stripe_obs.Sink.emit t.sink
      (Stripe_obs.Event.v ~channel ~size ~seq ~time kind)

(* Would quarantining [c] zero the live membership? Another channel
   must remain that is not quarantined and whose link the caller still
   vouches for. *)
let another_live t c =
  let n = Array.length t.chans in
  let rec go i =
    if i >= n then false
    else if i <> c && t.chans.(i).state <> Quarantined && t.live i then true
    else go (i + 1)
  in
  go 0

let sample t ~now =
  let cfg = t.config in
  let out = ref [] in
  let push tr = out := tr :: !out in
  Array.iteri
    (fun c ch ->
      match ch.state with
      | Quarantined ->
        (* No traffic, no evidence: quarantine exit is purely timed.
           Whatever dribbled in (e.g. stale guard counts) is dropped. *)
        clear_window ch;
        if now >= ch.until then begin
          ch.state <- Probation;
          ch.bad_streak <- 0;
          ch.good_streak <- 0;
          (* The reinstated channel starts its probation from a clean
             sheet of evidence but keeps its smoothed score above the
             exit line, so it must earn its way back to healthy. *)
          ch.score <- Float.max ch.score cfg.enter_suspect;
          emit t ~time:now Stripe_obs.Event.Reinstate ~channel:c ~size:(-1)
            ~seq:ch.flaps;
          push (To_probation { channel = c; from_quarantine = true })
        end
      | (Healthy | Suspect | Probation) as st ->
        let raw = if had_evidence ch then window_score cfg ch else 0.0 in
        clear_window ch;
        ch.score <- (cfg.alpha *. raw) +. ((1.0 -. cfg.alpha) *. ch.score);
        let enter =
          match st with
          | Probation -> cfg.enter_quarantine
          | _ -> cfg.enter_suspect
        in
        if ch.score >= enter then begin
          ch.good_streak <- 0;
          ch.bad_streak <- ch.bad_streak + 1;
          if ch.bad_streak >= cfg.escalate_windows then
            match st with
            | Healthy ->
              ch.state <- Suspect;
              ch.bad_streak <- 0;
              emit t ~time:now Stripe_obs.Event.Health_suspect ~channel:c
                ~size:(-1) ~seq:(-1);
              push (To_suspect { channel = c })
            | Suspect ->
              ch.state <- Probation;
              ch.bad_streak <- 0;
              emit t ~time:now Stripe_obs.Event.Probation ~channel:c
                ~size:(int_of_float (cfg.probation_frac *. 1000.0))
                ~seq:(-1);
              push (To_probation { channel = c; from_quarantine = false })
            | Probation ->
              if another_live t c then begin
                let backoff =
                  Float.min cfg.max_backoff
                    (cfg.base_backoff
                    *. (cfg.backoff_factor ** float_of_int ch.flaps))
                in
                ch.state <- Quarantined;
                ch.flaps <- ch.flaps + 1;
                ch.until <- now +. backoff;
                ch.bad_streak <- 0;
                emit t ~time:now Stripe_obs.Event.Quarantine ~channel:c
                  ~size:(int_of_float (backoff *. 1000.0))
                  ~seq:(-1);
                push (To_quarantine { channel = c; backoff })
              end
              else begin
                (* Last-live-channel guard: keep probing at reduced
                   quantum rather than zeroing the membership. Hold the
                   streak at the threshold so the escalation retries
                   the moment another channel comes back. *)
                t.deferred <- t.deferred + 1;
                ch.bad_streak <- cfg.escalate_windows
              end
            | Quarantined -> assert false
        end
        else if ch.score <= cfg.exit_healthy then begin
          ch.bad_streak <- 0;
          ch.good_streak <- ch.good_streak + 1;
          if ch.good_streak >= cfg.recover_windows && st <> Healthy then begin
            ch.state <- Healthy;
            ch.good_streak <- 0;
            (* A full recovery forgives past flaps: the next failure
               starts the backoff schedule over. *)
            let seq = ch.flaps in
            ch.flaps <- 0;
            (if st = Probation then
               emit t ~time:now Stripe_obs.Event.Reinstate ~channel:c
                 ~size:1000 ~seq);
            push (To_healthy { channel = c; from = st })
          end
        end
        else begin
          (* Hysteresis band: progress in neither direction. *)
          ch.bad_streak <- 0;
          ch.good_streak <- 0
        end)
    t.chans;
  List.rev !out

let state_name = function
  | Healthy -> "healthy"
  | Suspect -> "suspect"
  | Probation -> "probation"
  | Quarantined -> "quarantined"

(* Spec grammar (for --health command-line flags):

     KEY=VALUE[,KEY=VALUE...]

   every=S        evidence-window tick interval (returned separately —
                  driver policy, not engine state)
   alpha=A        EWMA weight of the newest window
   suspect=X      healthy->suspect score threshold
   quarantine=X   probation->quarantine score threshold
   exit=X         recovery threshold (hysteresis low line)
   escalate=N     consecutive bad windows per escalation
   recover=N      consecutive clean windows per de-escalation
   frac=F         probation quantum fraction
   backoff=S      first quarantine duration
   factor=F       backoff growth per flap
   maxbackoff=S   backoff ceiling *)
let parse_spec s =
  let open Stripe_netsim.Spec in
  let c = ctx ~kind:"health" s in
  let rec collect (cfg, every) = function
    | [] -> Ok (cfg, every)
    | (c, tok) :: rest ->
      let* acc =
        match kv tok with
        | _, None -> errf c "health item %S lacks a =VALUE" tok
        | "every", Some v ->
          let* e = positive c ~what:"tick interval" v in
          Ok (cfg, Some e)
        | "alpha", Some v ->
          let* a = prob c ~what:"alpha" v in
          Ok ({ cfg with alpha = a }, every)
        | "suspect", Some v ->
          let* x = prob c ~what:"suspect threshold" v in
          Ok ({ cfg with enter_suspect = x }, every)
        | "quarantine", Some v ->
          let* x = prob c ~what:"quarantine threshold" v in
          Ok ({ cfg with enter_quarantine = x }, every)
        | "exit", Some v ->
          let* x = prob c ~what:"exit threshold" v in
          Ok ({ cfg with exit_healthy = x }, every)
        | "escalate", Some v ->
          let* n = int_ c ~what:"escalate windows" v in
          Ok ({ cfg with escalate_windows = n }, every)
        | "recover", Some v ->
          let* n = int_ c ~what:"recover windows" v in
          Ok ({ cfg with recover_windows = n }, every)
        | "frac", Some v ->
          let* f = prob c ~what:"probation fraction" v in
          Ok ({ cfg with probation_frac = f }, every)
        | "backoff", Some v ->
          let* b = positive c ~what:"backoff" v in
          Ok ({ cfg with base_backoff = b }, every)
        | "factor", Some v ->
          let* f = positive c ~what:"backoff factor" v in
          Ok ({ cfg with backoff_factor = f }, every)
        | "maxbackoff", Some v ->
          let* b = positive c ~what:"max backoff" v in
          Ok ({ cfg with max_backoff = b }, every)
        | name, Some _ ->
          errf c
            "unknown health item %S (want every=, alpha=, suspect=, \
             quarantine=, exit=, escalate=, recover=, frac=, backoff=, \
             factor=, maxbackoff=)"
            name
      in
      collect acc rest
  in
  let* cfg, every = collect (default_config, None) (located c s) in
  match check_config cfg with
  | () -> Ok (cfg, every)
  | exception Invalid_argument m ->
    errf c "%s" (match String.index_opt m ':' with
      | Some i -> String.sub m (i + 2) (String.length m - i - 2)
      | None -> m)
