type instance = {
  select : unit -> int;
  update : size:int -> unit;
  reset : unit -> unit;
}

type t = {
  name : string;
  n : int;
  fresh : unit -> instance;
}

let of_deficit ~name make =
  let probe = make () in
  {
    name;
    n = Deficit.n_channels probe;
    fresh =
      (fun () ->
        let d = make () in
        {
          select = (fun () -> Deficit.select d);
          update = (fun ~size -> Deficit.consume d ~size);
          reset = (fun () -> Deficit.reinit d);
        });
  }

let seeded_random ~name ~n ~seed =
  if n <= 0 then invalid_arg "Cfq.seeded_random: n must be positive";
  {
    name;
    n;
    fresh =
      (fun () ->
        let rng = ref (Stripe_netsim.Rng.create seed) in
        (* The channel for packet k is drawn when packet k is dispatched;
           selection must be stable across repeated [select] calls before
           the matching [update], so we draw lazily and cache. *)
        let pending = ref None in
        let select () =
          match !pending with
          | Some c -> c
          | None ->
            let c = Stripe_netsim.Rng.int !rng n in
            pending := Some c;
            c
        in
        let update ~size:_ = pending := None in
        (* The §5 reset point. Both halves matter: the receiver's replay
           restarts its draw index at 0, so the sender must reseed — and
           must also discard a draw cached by a [select] that never
           reached [update] (a packet selected but not yet dispatched
           when the barrier fired). Keeping that stale draw would make
           the first post-reset packet consume draw -1 while the
           receiver's simulation consumes draw 0: permanently offset,
           on any membership, n = 1 included. *)
        let reset () =
          rng := Stripe_netsim.Rng.create seed;
          pending := None
        in
        { select; update; reset });
  }

(* Min-load selection (the memec StripeList LOAD_AWARE idiom) as a pure
   CFQ algorithm: the packet goes to the channel with the least
   cumulative bytes per unit weight. The state — bytes already assigned
   per channel — is a function of previously transmitted packets only,
   so in this pure form the scheme is causal in the §3.1 sense (the live
   fleet variant in {!Scheduler.load_aware} instead reads wire state the
   receiver cannot see, and is not). Ties break to the lowest index,
   which also fixes the initial order: deterministic throughout. *)
let load_aware ?weights ~name ~n () =
  if n <= 0 then invalid_arg "Cfq.load_aware: n must be positive";
  let w =
    match weights with
    | None -> Array.make n 1.0
    | Some w ->
      if Array.length w <> n then
        invalid_arg "Cfq.load_aware: weight vector width mismatch";
      Array.iter
        (fun x ->
          if (not (Float.is_finite x)) || x <= 0.0 then
            invalid_arg "Cfq.load_aware: weights must be positive")
        w;
      Array.copy w
  in
  {
    name;
    n;
    fresh =
      (fun () ->
        let assigned = Array.make n 0 in
        let pick () =
          let best = ref 0 in
          let best_load = ref (float_of_int assigned.(0) /. w.(0)) in
          for c = 1 to n - 1 do
            let l = float_of_int assigned.(c) /. w.(c) in
            if l < !best_load then begin
              best := c;
              best_load := l
            end
          done;
          !best
        in
        let pending = ref None in
        let select () =
          match !pending with
          | Some c -> c
          | None ->
            let c = pick () in
            pending := Some c;
            c
        in
        let update ~size =
          let c = match !pending with Some c -> c | None -> pick () in
          assigned.(c) <- assigned.(c) + size;
          pending := None
        in
        let reset () =
          Array.fill assigned 0 n 0;
          pending := None
        in
        { select; update; reset });
  }

let load_share cfq packets =
  let inst = cfq.fresh () in
  List.map
    (fun (size, payload) ->
      let c = inst.select () in
      inst.update ~size;
      (c, (size, payload)))
    packets

let outputs_by_channel ~n dispatch =
  let rev = Array.make n [] in
  List.iter (fun (c, p) -> rev.(c) <- p :: rev.(c)) dispatch;
  Array.map List.rev rev

let fair_queue cfq queues =
  let remaining = Array.map (fun q -> ref q) queues in
  let inst = cfq.fresh () in
  let total = Array.fold_left (fun acc q -> acc + List.length !q) 0 remaining in
  let rec loop acc k =
    if k = total then Some (List.rev acc)
    else
      let c = inst.select () in
      match !(remaining.(c)) with
      | [] -> None
      | ((size, _) as p) :: rest ->
        remaining.(c) := rest;
        inst.update ~size;
        loop ((c, p) :: acc) (k + 1)
  in
  loop [] 0
