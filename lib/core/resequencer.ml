open Stripe_packet
module Obs = Stripe_obs

type t = {
  d : Deficit.t;
  n : int;
  buffers : Packet.t Fifo_queue.t array;
  force : Deficit.stamp option array;
      (* Pending marker state per channel: the (round, DC) of the next
         data packet, to be enforced when the scan reaches that round. *)
  deliver : channel:int -> Packet.t -> unit;
  on_credit : (int -> int -> unit) option;
  reset_pending : bool array;
      (* Channels whose stream has reached a reset marker; when all have,
         the receiver reinitializes (crash-recovery barrier, §5). *)
  now : unit -> float;
  sink : Obs.Sink.t;
  mutable n_data_buffered : int;
  mutable n_delivered : int;
  mutable n_skips : int;
  mutable n_markers : int;
  mutable n_resets : int;
  mutable waiting : int option;
}

let create ~deficit ?on_credit ?(now = fun () -> 0.0) ?(sink = Obs.Sink.null)
    ~deliver () =
  let n = Deficit.n_channels deficit in
  {
    d = deficit;
    n;
    buffers = Array.init n (fun _ -> Fifo_queue.create ());
    force = Array.make n None;
    deliver;
    on_credit;
    reset_pending = Array.make n false;
    now;
    sink;
    n_data_buffered = 0;
    n_delivered = 0;
    n_skips = 0;
    n_markers = 0;
    n_resets = 0;
    waiting = None;
  }

let apply_marker t (m : Packet.marker) =
  t.n_markers <- t.n_markers + 1;
  let c = m.m_channel in
  if c < 0 || c >= t.n then
    invalid_arg "Resequencer: marker names an unknown channel";
  t.force.(c) <- Some { Deficit.round = m.m_round; dc = m.m_dc };
  if Obs.Sink.active t.sink then
    Obs.Sink.emit t.sink
      (Obs.Event.v ~channel:c ~round:m.m_round ~dc:m.m_dc ~time:(t.now ())
         Obs.Event.Marker_applied);
  match t.on_credit, m.m_credit with
  | Some f, Some k -> f c k
  | Some _, None | None, _ -> ()

(* Markers take effect in their FIFO position within the channel's
   stream: absorb any markers at the head of the current channel's buffer
   before deciding how to serve it. A marker's (r, d) describes exactly
   the next data packet behind it on the same channel. Absorption stops
   at a reset marker: everything behind it belongs to the next epoch and
   stays buffered until the reset barrier completes. *)
let rec absorb_markers t c =
  match Fifo_queue.peek t.buffers.(c) with
  | Some pkt when Packet.is_marker pkt ->
    let m = Packet.get_marker pkt in
    if m.Packet.m_reset then begin
      ignore (Fifo_queue.pop t.buffers.(c));
      t.n_markers <- t.n_markers + 1;
      if Obs.Sink.active t.sink then
        Obs.Sink.emit t.sink
          (Obs.Event.v ~channel:c ~round:m.Packet.m_round ~dc:m.Packet.m_dc
             ~time:(t.now ()) Obs.Event.Marker_applied);
      t.reset_pending.(c) <- true
    end
    else begin
      ignore (Fifo_queue.pop t.buffers.(c));
      apply_marker t m;
      absorb_markers t c
    end
  | Some _ | None -> ()

(* The receiver's scan: serve the current channel per the simulated
   sender algorithm; skip channels whose marker round is ahead of the
   receiver's global round (condition C1 of §5); block when the packet
   logically due next has not physically arrived. *)
let rec progress t =
  let c = Deficit.current t.d in
  if not t.reset_pending.(c) then absorb_markers t c;
  if t.reset_pending.(c) then begin
    if Array.for_all Fun.id t.reset_pending then begin
      (* Barrier complete: adopt the fresh epoch. *)
      Deficit.reinit t.d;
      Array.fill t.force 0 t.n None;
      Array.fill t.reset_pending 0 t.n false;
      t.n_resets <- t.n_resets + 1;
      t.waiting <- None;
      if Obs.Sink.active t.sink then
        Obs.Sink.emit t.sink
          (Obs.Event.v ~round:t.n_resets ~time:(t.now ())
             Obs.Event.Reset_barrier);
      progress t
    end
    else begin
      (* This channel's old epoch is over; keep draining the others. *)
      Deficit.advance t.d;
      progress t
    end
  end
  else
    match t.force.(c) with
  | Some s when s.Deficit.round > Deficit.round t.d ->
    (* We lost packets on [c] and arrived "too early": skip it this round
       and wait for our round number to catch up with the marker's. *)
    t.n_skips <- t.n_skips + 1;
    if Obs.Sink.active t.sink then
      Obs.Sink.emit t.sink
        (Obs.Event.v ~channel:c ~round:(Deficit.round t.d) ~time:(t.now ())
           Obs.Event.Skip);
    Deficit.advance t.d;
    progress t
  | force_state ->
    (if not (Deficit.in_service t.d) then begin
       Deficit.begin_visit t.d;
       match force_state with
       | Some s ->
         (* The marker gives the authoritative DC for serving the next
            data packet, superseding our simulated value. *)
         Deficit.set_dc t.d c s.Deficit.dc;
         t.force.(c) <- None
       | None -> ()
     end
     else
       match force_state with
       | Some s when s.Deficit.round <= Deficit.round t.d ->
         (* Mid-visit correction within the same round. *)
         Deficit.set_dc t.d c s.Deficit.dc;
         t.force.(c) <- None
       | Some _ | None -> ());
    if Deficit.dc t.d c <= 0 then begin
      Deficit.advance t.d;
      progress t
    end
    else begin
      match Fifo_queue.pop t.buffers.(c) with
      | None ->
        if t.waiting <> Some c && Obs.Sink.active t.sink then
          Obs.Sink.emit t.sink
            (Obs.Event.v ~channel:c ~time:(t.now ()) Obs.Event.Block);
        t.waiting <- Some c (* Block: logical reception waits here. *)
      | Some pkt ->
        if t.waiting = Some c && Obs.Sink.active t.sink then
          Obs.Sink.emit t.sink
            (Obs.Event.v ~channel:c ~time:(t.now ()) Obs.Event.Unblock);
        t.waiting <- None;
        t.n_data_buffered <- t.n_data_buffered - 1;
        t.n_delivered <- t.n_delivered + 1;
        if Obs.Sink.active t.sink then
          Obs.Sink.emit t.sink
            (Obs.Event.v ~channel:c ~round:(Deficit.round t.d)
               ~dc:(Deficit.dc t.d c) ~size:pkt.Packet.size
               ~seq:pkt.Packet.seq ~time:(t.now ()) Obs.Event.Deliver);
        t.deliver ~channel:c pkt;
        Deficit.consume t.d ~size:pkt.Packet.size;
        progress t
    end

let receive t ~channel pkt =
  if channel < 0 || channel >= t.n then
    invalid_arg "Resequencer.receive: bad channel";
  Fifo_queue.push t.buffers.(channel) ~size:pkt.Packet.size pkt;
  if not (Packet.is_marker pkt) then begin
    t.n_data_buffered <- t.n_data_buffered + 1;
    if Obs.Sink.active t.sink then
      Obs.Sink.emit t.sink
        (Obs.Event.v ~channel ~size:pkt.Packet.size ~seq:pkt.Packet.seq
           ~time:(t.now ()) Obs.Event.Enqueue)
  end;
  progress t

let delivered t = t.n_delivered

let pending t = t.n_data_buffered

let blocked_on t = t.waiting

let skips t = t.n_skips

let markers_seen t = t.n_markers

let resets t = t.n_resets

let round t = Deficit.round t.d

let buffer_high_water_packets t =
  (* Per-channel high waters do not peak simultaneously in general, but
     their sum bounds the simultaneous total and matches it for the
     common block-on-one-channel pattern. *)
  Array.fold_left (fun acc b -> acc + Fifo_queue.high_water_packets b) 0 t.buffers

let buffer_high_water_bytes t =
  Array.fold_left (fun acc b -> acc + Fifo_queue.high_water_bytes b) 0 t.buffers

let drain t =
  let out = ref [] in
  let remaining = ref true in
  while !remaining do
    remaining := false;
    Array.iter
      (fun b ->
        match Fifo_queue.pop b with
        | Some pkt ->
          if not (Packet.is_marker pkt) then out := pkt :: !out;
          remaining := true
        | None -> ())
      t.buffers
  done;
  t.n_data_buffered <- 0;
  (* Draining empties every channel buffer: there is no pending logical
     read to block on and no buffered stream position left for a recorded
     marker stamp to describe — clear both so [blocked_on] and the next
     scan do not act on stale state. *)
  t.waiting <- None;
  Array.fill t.force 0 t.n None;
  List.rev !out
