open Stripe_packet
module Obs = Stripe_obs

type watchdog = { intervals : int; fallback : float }

type t = {
  d : Deficit.t;
  n : int;
  buffers : Packet.t Fifo_queue.t array;
  force : Deficit.stamp option array;
      (* Pending marker state per channel: the (round, DC) of the next
         data packet, to be enforced when the scan reaches that round. *)
  deliver : channel:int -> Packet.t -> unit;
  on_credit : (int -> int -> unit) option;
  reset_pending : bool array;
      (* Channels whose stream has reached a reset marker; when all have,
         the receiver reinitializes (crash-recovery barrier, §5). *)
  now : unit -> float;
  sink : Obs.Sink.t;
  wd : watchdog option;
  last_rx : float array;  (* Last physical arrival (data or marker). *)
  last_marker_rx : float array;
  marker_gap : float array;
      (* EWMA of the observed inter-marker gap per channel; 0 until two
         markers have arrived, in which case [wd.fallback] stands in. *)
  dead : bool array;
  mutable n_data_buffered : int;
  mutable n_delivered : int;
  mutable n_skips : int;
  mutable n_wd_skips : int;
  mutable wd_spin : int;
      (* Watchdog skips since the last delivery / barrier / arrival.
         Buffered data can be unreachable (e.g. behind a reset marker on
         a channel whose barrier cannot complete), so skips must be
         bounded or the scan would spin forever: once a full rotation of
         skips yields no delivery, the receiver blocks until something
         new arrives. *)
  mutable n_deaths : int;
  mutable n_markers : int;
  mutable n_resets : int;
  mutable waiting : int option;
}

let create ~deficit ?on_credit ?(now = fun () -> 0.0) ?(sink = Obs.Sink.null)
    ?watchdog ~deliver () =
  (match watchdog with
  | Some w when w.intervals <= 0 || w.fallback <= 0.0 ->
    invalid_arg "Resequencer.create: watchdog needs intervals > 0, fallback > 0"
  | Some _ | None -> ());
  let n = Deficit.n_channels deficit in
  {
    d = deficit;
    n;
    buffers = Array.init n (fun _ -> Fifo_queue.create ());
    force = Array.make n None;
    deliver;
    on_credit;
    reset_pending = Array.make n false;
    now;
    sink;
    wd = watchdog;
    last_rx = Array.make n (now ());
    last_marker_rx = Array.make n neg_infinity;
    marker_gap = Array.make n 0.0;
    dead = Array.make n false;
    n_data_buffered = 0;
    n_delivered = 0;
    n_skips = 0;
    n_wd_skips = 0;
    wd_spin = 0;
    n_deaths = 0;
    n_markers = 0;
    n_resets = 0;
    waiting = None;
  }

(* Marker-cadence watchdog (not part of the paper's protocol, which
   assumes channels stay up): markers arrive on every live channel with a
   roughly periodic cadence, so a channel silent for [intervals] estimated
   marker gaps is declared dead. The check is lazy — evaluated when the
   scan blocks on the channel — so no periodic timer is required as long
   as other channels keep the scan moving; [tick] covers the rest. *)
let expected_gap t w c =
  if t.marker_gap.(c) > 0.0 then t.marker_gap.(c) else w.fallback

let check_dead t c =
  match t.wd with
  | None -> false
  | Some w ->
    t.dead.(c)
    ||
    let silence = t.now () -. t.last_rx.(c) in
    silence > float_of_int w.intervals *. expected_gap t w c
    && begin
         t.dead.(c) <- true;
         t.n_deaths <- t.n_deaths + 1;
         true
       end

let note_arrival t c ~is_marker =
  let now = t.now () in
  t.last_rx.(c) <- now;
  t.dead.(c) <- false;
  if is_marker then begin
    if t.last_marker_rx.(c) > neg_infinity then begin
      let gap = now -. t.last_marker_rx.(c) in
      t.marker_gap.(c) <-
        (if t.marker_gap.(c) > 0.0 then (0.5 *. t.marker_gap.(c)) +. (0.5 *. gap)
         else gap)
    end;
    t.last_marker_rx.(c) <- now
  end

let apply_marker t (m : Packet.marker) =
  t.n_markers <- t.n_markers + 1;
  let c = m.m_channel in
  if c < 0 || c >= t.n then
    invalid_arg "Resequencer: marker names an unknown channel";
  t.force.(c) <- Some { Deficit.round = m.m_round; dc = m.m_dc };
  if Obs.Sink.active t.sink then
    Obs.Sink.emit t.sink
      (Obs.Event.v ~channel:c ~round:m.m_round ~dc:m.m_dc ~time:(t.now ())
         Obs.Event.Marker_applied);
  match t.on_credit, m.m_credit with
  | Some f, Some k -> f c k
  | Some _, None | None, _ -> ()

(* Markers take effect in their FIFO position within the channel's
   stream: absorb any markers at the head of the current channel's buffer
   before deciding how to serve it. A marker's (r, d) describes exactly
   the next data packet behind it on the same channel. Absorption stops
   at a reset marker: everything behind it belongs to the next epoch and
   stays buffered until the reset barrier completes. *)
let rec absorb_markers t c =
  match Fifo_queue.peek t.buffers.(c) with
  | Some pkt when Packet.is_marker pkt ->
    let m = Packet.get_marker pkt in
    if m.Packet.m_reset then begin
      ignore (Fifo_queue.pop t.buffers.(c));
      t.n_markers <- t.n_markers + 1;
      if Obs.Sink.active t.sink then
        Obs.Sink.emit t.sink
          (Obs.Event.v ~channel:c ~round:m.Packet.m_round ~dc:m.Packet.m_dc
             ~time:(t.now ()) Obs.Event.Marker_applied);
      t.reset_pending.(c) <- true
    end
    else begin
      ignore (Fifo_queue.pop t.buffers.(c));
      apply_marker t m;
      absorb_markers t c
    end
  | Some _ | None -> ()

(* The §5 barrier is complete when the reset marker has arrived on every
   channel — or, with a watchdog, on every channel not declared dead: a
   dead channel's marker was lost with the link, and waiting for it would
   trap everything buffered behind the other channels' reset markers.
   When the dead channel revives, the sender's resume fires a fresh
   barrier anyway. *)
let barrier_complete t =
  let ok = ref true in
  for i = 0 to t.n - 1 do
    if not (t.reset_pending.(i) || check_dead t i) then ok := false
  done;
  !ok

(* The receiver's scan: serve the current channel per the simulated
   sender algorithm; skip channels whose marker round is ahead of the
   receiver's global round (condition C1 of §5); block when the packet
   logically due next has not physically arrived. *)
let rec progress t =
  let c = Deficit.current t.d in
  if not t.reset_pending.(c) then absorb_markers t c;
  if t.reset_pending.(c) then begin
    if barrier_complete t then begin
      (* Barrier complete: adopt the fresh epoch. *)
      Deficit.reinit t.d;
      Array.fill t.force 0 t.n None;
      Array.fill t.reset_pending 0 t.n false;
      t.n_resets <- t.n_resets + 1;
      t.waiting <- None;
      t.wd_spin <- 0;
      if Obs.Sink.active t.sink then
        Obs.Sink.emit t.sink
          (Obs.Event.v ~round:t.n_resets ~time:(t.now ())
             Obs.Event.Reset_barrier);
      progress t
    end
    else begin
      (* This channel's old epoch is over; keep draining the others. *)
      Deficit.advance t.d;
      progress t
    end
  end
  else
    match t.force.(c) with
  | Some s when s.Deficit.round > Deficit.round t.d ->
    (* We lost packets on [c] and arrived "too early": skip it this round
       and wait for our round number to catch up with the marker's. *)
    t.n_skips <- t.n_skips + 1;
    if Obs.Sink.active t.sink then
      Obs.Sink.emit t.sink
        (Obs.Event.v ~channel:c ~round:(Deficit.round t.d) ~time:(t.now ())
           Obs.Event.Skip);
    Deficit.advance t.d;
    progress t
  | force_state ->
    (if not (Deficit.in_service t.d) then begin
       Deficit.begin_visit t.d;
       match force_state with
       | Some s ->
         (* The marker gives the authoritative DC for serving the next
            data packet, superseding our simulated value. *)
         Deficit.set_dc t.d c s.Deficit.dc;
         t.force.(c) <- None
       | None -> ()
     end
     else
       match force_state with
       | Some s when s.Deficit.round <= Deficit.round t.d ->
         (* Mid-visit correction within the same round. *)
         Deficit.set_dc t.d c s.Deficit.dc;
         t.force.(c) <- None
       | Some _ | None -> ());
    if Deficit.dc t.d c <= 0 then begin
      Deficit.advance t.d;
      progress t
    end
    else begin
      match Fifo_queue.pop t.buffers.(c) with
      | None ->
        if check_dead t c && t.n_data_buffered > 0 && t.wd_spin < t.n then begin
          (* The watchdog declared [c] dead and other channels hold data:
             pass the dead channel over instead of blocking forever.
             Delivery is quasi-FIFO from here until the channel revives
             (any arrival clears the flag) and a marker — or the sender's
             reset barrier — resynchronizes the simulation. The
             [n_data_buffered] guard keeps an all-quiet receiver blocked
             rather than spinning the scan. *)
          t.n_wd_skips <- t.n_wd_skips + 1;
          t.wd_spin <- t.wd_spin + 1;
          if Obs.Sink.active t.sink then
            Obs.Sink.emit t.sink
              (Obs.Event.v ~channel:c ~round:(Deficit.round t.d)
                 ~time:(t.now ()) Obs.Event.Watchdog_skip);
          if t.waiting = Some c then begin
            t.waiting <- None;
            if Obs.Sink.active t.sink then
              Obs.Sink.emit t.sink
                (Obs.Event.v ~channel:c ~time:(t.now ()) Obs.Event.Unblock)
          end;
          Deficit.advance t.d;
          progress t
        end
        else begin
          if t.waiting <> Some c && Obs.Sink.active t.sink then
            Obs.Sink.emit t.sink
              (Obs.Event.v ~channel:c ~time:(t.now ()) Obs.Event.Block);
          t.waiting <- Some c (* Block: logical reception waits here. *)
        end
      | Some pkt ->
        if t.waiting = Some c && Obs.Sink.active t.sink then
          Obs.Sink.emit t.sink
            (Obs.Event.v ~channel:c ~time:(t.now ()) Obs.Event.Unblock);
        t.waiting <- None;
        t.wd_spin <- 0;
        t.n_data_buffered <- t.n_data_buffered - 1;
        t.n_delivered <- t.n_delivered + 1;
        if Obs.Sink.active t.sink then
          Obs.Sink.emit t.sink
            (Obs.Event.v ~channel:c ~round:(Deficit.round t.d)
               ~dc:(Deficit.dc t.d c) ~size:pkt.Packet.size
               ~seq:pkt.Packet.seq ~time:(t.now ()) Obs.Event.Deliver);
        t.deliver ~channel:c pkt;
        Deficit.consume t.d ~size:pkt.Packet.size;
        progress t
    end

let receive t ~channel pkt =
  if channel < 0 || channel >= t.n then
    invalid_arg "Resequencer.receive: bad channel";
  note_arrival t channel ~is_marker:(Packet.is_marker pkt);
  t.wd_spin <- 0;
  Fifo_queue.push t.buffers.(channel) ~size:pkt.Packet.size pkt;
  if not (Packet.is_marker pkt) then begin
    t.n_data_buffered <- t.n_data_buffered + 1;
    if Obs.Sink.active t.sink then
      Obs.Sink.emit t.sink
        (Obs.Event.v ~channel ~size:pkt.Packet.size ~seq:pkt.Packet.seq
           ~time:(t.now ()) Obs.Event.Enqueue)
  end;
  progress t

let tick t =
  t.wd_spin <- 0;
  progress t

let delivered t = t.n_delivered

let pending t = t.n_data_buffered

let blocked_on t = t.waiting

let skips t = t.n_skips

let watchdog_skips t = t.n_wd_skips

let dead_declarations t = t.n_deaths

let channel_dead t c =
  if c < 0 || c >= t.n then invalid_arg "Resequencer.channel_dead: bad channel";
  t.dead.(c)

let markers_seen t = t.n_markers

let resets t = t.n_resets

let round t = Deficit.round t.d

let buffer_high_water_packets t =
  (* Per-channel high waters do not peak simultaneously in general, but
     their sum bounds the simultaneous total and matches it for the
     common block-on-one-channel pattern. *)
  Array.fold_left (fun acc b -> acc + Fifo_queue.high_water_packets b) 0 t.buffers

let buffer_high_water_bytes t =
  Array.fold_left (fun acc b -> acc + Fifo_queue.high_water_bytes b) 0 t.buffers

let drain t =
  let out = ref [] in
  let remaining = ref true in
  while !remaining do
    remaining := false;
    Array.iter
      (fun b ->
        match Fifo_queue.pop b with
        | Some pkt ->
          if not (Packet.is_marker pkt) then out := pkt :: !out;
          remaining := true
        | None -> ())
      t.buffers
  done;
  t.n_data_buffered <- 0;
  (* Draining empties every channel buffer: there is no pending logical
     read to block on and no buffered stream position left for a recorded
     marker stamp to describe — clear both so [blocked_on] and the next
     scan do not act on stale state. *)
  t.waiting <- None;
  Array.fill t.force 0 t.n None;
  List.rev !out
