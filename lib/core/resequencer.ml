open Stripe_packet
module Obs = Stripe_obs

type watchdog = { intervals : int; fallback : float }

type overflow =
  | Drop_newest
  | Force_flush

(* A sender-side transition (retune, bundle add/remove) staged until the
   matching §5 reset barrier completes, at which point the simulated
   engine is rebuilt to the staged shape. One transition in flight at a
   time: each rides its own barrier. *)
type staged =
  | S_none
  | S_retune of int array
  | S_add of int array  (* new quanta, width n (already grown) *)
  | S_remove of int * int array  (* leaving channel, new quanta *)

type t = {
  d : Deficit.t;
  mutable n : int;
      (* Runtime width: the channels [receive] accepts and the barrier
         waits on. Equal to the engine's width except while an [S_add]
         is staged, when it already counts the newcomer the engine will
         only adopt at the barrier. *)
  mutable buffers : Packet.t Fifo_queue.t array;
  mutable staged : staged;
  budget : int option;
      (* Byte budget across the per-channel buffers, counting data
         packets only: markers are tiny, bounded in number by the marker
         cadence, and carry the resynchronization state — rejecting one
         to save 36 bytes could cost a whole marker interval of
         quasi-FIFO delivery, so they are always accepted. *)
  overflow : overflow;
  on_pressure : (high:bool -> unit) option;
  mutable force : Deficit.stamp option array;
      (* Pending marker state per channel: the (round, DC) of the next
         data packet, to be enforced when the scan reaches that round. *)
  deliver : channel:int -> Packet.t -> unit;
  on_credit : (int -> int -> unit) option;
  mutable reset_pending : bool array;
      (* Channels whose stream has reached a reset marker; when all have,
         the receiver reinitializes (crash-recovery barrier, §5). *)
  mutable park_epoch : int array;
  mutable park_gen : int array;
      (* The (epoch, generation) stamp of the marker each parked channel
         is waiting at — meaningful only while [reset_pending] is set.
         §5 assumes one reset in flight at a time; under fault storms
         barriers can overtake each other, and the generation tag is
         what lets adoption pair markers of the same barrier instead of
         completing one generation with another's stragglers. A
         generation of [0] is an untagged (legacy / hand-built) marker:
         it joins whatever barrier adopts in its epoch. *)
  mutable rx_gen : int;
      (* Generation (within [rx_epoch]) of the last adopted barrier;
         [-1] when none has been adopted this epoch. A reset marker at
         or below this pair is a leftover copy of a barrier already
         crossed and is absorbed without parking — the §5 dedupe that
         keeps stray copies from assembling phantom barriers. *)
  now : unit -> float;
  sink : Obs.Sink.t;
  wd : watchdog option;
  mutable last_rx : float array;  (* Last physical arrival (data or marker). *)
  mutable last_marker_rx : float array;
  mutable marker_gap : float array;
      (* EWMA of the observed inter-marker gap per channel; 0 until two
         markers have arrived, in which case [wd.fallback] stands in. *)
  mutable gap_suspect : float array;
      (* A marker gap that exceeded the watchdog horizon, held out of
         the cadence estimate until corroborated (0 = none pending).
         One such gap is an outage that swallowed markers — adopting it
         would inflate every horizon derived from the estimate (dead
         declaration, barrier staleness) by the outage length; two
         consecutive such gaps are a genuine cadence stretch, and the
         smaller of the two is adopted. *)
  mutable dead : bool array;
  mutable n_data_buffered : int;
  mutable n_delivered : int;
  mutable n_skips : int;
  mutable n_wd_skips : int;
  mutable wd_spin : int;
      (* Watchdog skips since the last delivery / barrier / arrival.
         Buffered data can be unreachable (e.g. behind a reset marker on
         a channel whose barrier cannot complete), so skips must be
         bounded or the scan would spin forever: once a full rotation of
         skips yields no delivery, the receiver blocks until something
         new arrives. *)
  mutable n_deaths : int;
  mutable n_markers : int;
  mutable n_resets : int;
  mutable waiting : int;  (* Channel the scan is blocked on; -1 = none. *)
  mutable data_bytes : int;  (* Data bytes currently buffered. *)
  mutable max_data_bytes : int;
  mutable pressure : bool;
  mutable force_need : int;
      (* > 0 while a Force_flush eviction is in progress: the scan turns
         blocks into bounded forced skips until this many bytes fit under
         the budget. *)
  mutable n_overflows : int;
  mutable n_overflow_drops : int;
  mutable n_forced_deliveries : int;
  mutable n_corrupt_markers : int;
  mutable round_lag : int;
      (* Translation between the sender's round numbering and the
         receiver's global round [G]. Zero in normal operation: the scan
         can only lag the sender (blocks and C1 skips), never lead, and
         markers re-pin under [r >= G]. Forced skips (Force_flush) and
         watchdog skips break that invariant — they advance [G] without
         consuming the sender's schedule, so [G] can run {e ahead} and
         every later marker arrives with [r < G]. Pinning such markers
         verbatim anchors each channel at a different phase and the
         simulated interleave stays scrambled forever. Instead, marker
         rounds are compared as [r + round_lag]; when a marker still pins
         below [G] the lag is re-anchored to [G - r], which is consistent
         across channels because the sender's rounds are one global
         sequence. *)
  mutable n_realigns : int;
  mutable rx_epoch : int;
      (* Sender incarnation this receiver is synchronized to. Markers
         from a later epoch prove the sender crash-restarted and lost all
         striping state (PROTOCOL.md §12): whatever is buffered ahead of
         such a marker on its channel predates the crash and is stale.
         [min_int] after a receiver-side [crash_restart], so the very
         next marker on each channel — whatever its epoch — drives the
         cold resynchronization. *)
  mutable pending_epoch : int;
      (* Epoch of the in-progress crash barrier; equals [rx_epoch] when
         none is in progress. Adopted at barrier completion. *)
  mutable ch_epoch : int array;
      (* Highest marker epoch seen per channel. Tracks which channels
         have already joined the crash barrier, so a channel is flushed
         once per sender incarnation, not once per marker. *)
  mutable n_epoch_discards : int;
  mutable n_crash_syncs : int;  (* Completed crash barriers. *)
  mutable n_stale_resets : int;
      (* Reset-marker copies discarded as duplicates of an already
         adopted generation. *)
  mutable realign_pending : bool;
      (* Set when a crash barrier adopts: the two endpoints restarted
         their round numbering independently (the sender from its
         reboot, the receiver from the barrier's reinit), so the first
         marker absorbed afterwards re-anchors [round_lag] instead of
         C1-skipping its way across the gap round by round. *)
  mutable barrier_start : float;
      (* When the first channel of the currently assembling reset
         barrier parked ([nan] when none is assembling). The generation
         tag pairs markers of the same barrier, but a marker genuinely
         lost on a dead link still leaves a barrier that cannot
         complete; the assembly age bounds the wait: see
         [barrier_stale]. *)
  mutable n_forced_barriers : int;
  (* Arrival reorder-depth gauge: for each data arrival, how far below
     the highest sequence already arrived it lands (0 = in order). This
     is the discipline-comparison metric — how much cross-channel
     interleave the resequencer is asked to repair — measured at
     arrival, before any buffering decision. [rd_hist] is a bounded
     histogram (last bucket = overflow) for percentiles; [rd_max] is
     exact. Packets without a sequence (seq < 0) are not judged. *)
  mutable rd_max_seq : int;
  mutable rd_max : int;
  mutable rd_samples : int;
  rd_hist : int array;
  mutable on_adopt : unit -> unit;
      (* Fires after a staged retune/add/remove is adopted at its
         barrier. The demux layer above uses this to switch its
         channel-index mapping at exactly the point in each channel's
         FIFO where the sender's numbering changed. *)
}

(* Histogram width of the reorder-depth gauge: depths at or above the
   last bucket clamp into it (the max stays exact). 128 keeps the array
   at 1 KiB so the bundle pool can afford one per slot. *)
let rd_buckets = 128

let create ~deficit ?on_credit ?(now = fun () -> 0.0) ?(sink = Obs.Sink.null)
    ?watchdog ?budget_bytes ?(overflow = Drop_newest) ?on_pressure ~deliver ()
    =
  (match watchdog with
  | Some w when w.intervals <= 0 || w.fallback <= 0.0 ->
    invalid_arg "Resequencer.create: watchdog needs intervals > 0, fallback > 0"
  | Some _ | None -> ());
  (match budget_bytes with
  | Some b when b <= 0 ->
    invalid_arg "Resequencer.create: budget_bytes must be positive"
  | Some _ | None -> ());
  let n = Deficit.n_channels deficit in
  {
    d = deficit;
    n;
    buffers = Array.init n (fun _ -> Fifo_queue.create ());
    staged = S_none;
    budget = budget_bytes;
    overflow;
    on_pressure;
    force = Array.make n None;
    deliver;
    on_credit;
    reset_pending = Array.make n false;
    park_epoch = Array.make n 0;
    park_gen = Array.make n 0;
    rx_gen = -1;
    now;
    sink;
    wd = watchdog;
    last_rx = Array.make n (now ());
    last_marker_rx = Array.make n neg_infinity;
    marker_gap = Array.make n 0.0;
    gap_suspect = Array.make n 0.0;
    dead = Array.make n false;
    n_data_buffered = 0;
    n_delivered = 0;
    n_skips = 0;
    n_wd_skips = 0;
    wd_spin = 0;
    n_deaths = 0;
    n_markers = 0;
    n_resets = 0;
    waiting = -1;
    data_bytes = 0;
    max_data_bytes = 0;
    pressure = false;
    force_need = 0;
    n_overflows = 0;
    n_overflow_drops = 0;
    n_forced_deliveries = 0;
    n_corrupt_markers = 0;
    round_lag = 0;
    n_realigns = 0;
    rx_epoch = 0;
    pending_epoch = 0;
    ch_epoch = Array.make n 0;
    n_epoch_discards = 0;
    n_crash_syncs = 0;
    n_stale_resets = 0;
    realign_pending = false;
    barrier_start = Float.nan;
    n_forced_barriers = 0;
    rd_max_seq = -1;
    rd_max = 0;
    rd_samples = 0;
    rd_hist = Array.make rd_buckets 0;
    on_adopt = (fun () -> ());
  }

let on_transition_adopted t f = t.on_adopt <- f

(* Re-arm an existing resequencer for a fresh bundle. This is the bundle
   pool's churn primitive: a departing bundle's resequencer — buffers,
   engine, watchdog arrays and all — is reset in place and handed to the
   next arrival, so tearing down and re-creating a bundle allocates
   nothing in steady state. The per-channel buffers are recycled with
   {!Fifo_queue.recycle}, not bare [clear]: clear keeps the high-water
   marks (lifetime maxima for buffer-sizing reports), and carrying them
   to the next owner would report cross-bundle maxima. The [deliver] /
   [on_credit] / [on_pressure] callbacks, sink, clock, watchdog config,
   and budget are slot state and are kept. *)
let recycle t =
  let n = Deficit.n_channels t.d in
  Deficit.reconfigure t.d ~quanta:(Deficit.quanta t.d);
  t.staged <- S_none;
  if Array.length t.buffers <> n then begin
    (* A staged add/remove died with the old bundle: rebuild the runtime
       arrays at the engine's width. *)
    t.buffers <- Array.init n (fun _ -> Fifo_queue.create ());
    t.force <- Array.make n None;
    t.reset_pending <- Array.make n false;
    t.park_epoch <- Array.make n 0;
    t.park_gen <- Array.make n 0;
    t.last_rx <- Array.make n (t.now ());
    t.last_marker_rx <- Array.make n neg_infinity;
    t.marker_gap <- Array.make n 0.0;
    t.gap_suspect <- Array.make n 0.0;
    t.dead <- Array.make n false;
    t.ch_epoch <- Array.make n 0
  end
  else begin
    Array.iter Fifo_queue.recycle t.buffers;
    Array.fill t.force 0 n None;
    Array.fill t.reset_pending 0 n false;
    Array.fill t.park_epoch 0 n 0;
    Array.fill t.park_gen 0 n 0;
    Array.fill t.last_rx 0 n (t.now ());
    Array.fill t.last_marker_rx 0 n neg_infinity;
    Array.fill t.marker_gap 0 n 0.0;
    Array.fill t.gap_suspect 0 n 0.0;
    Array.fill t.dead 0 n false;
    Array.fill t.ch_epoch 0 n 0
  end;
  t.n <- n;
  t.n_data_buffered <- 0;
  t.n_delivered <- 0;
  t.n_skips <- 0;
  t.n_wd_skips <- 0;
  t.wd_spin <- 0;
  t.n_deaths <- 0;
  t.n_markers <- 0;
  t.n_resets <- 0;
  t.waiting <- -1;
  t.data_bytes <- 0;
  t.max_data_bytes <- 0;
  t.pressure <- false;
  t.force_need <- 0;
  t.n_overflows <- 0;
  t.n_overflow_drops <- 0;
  t.n_forced_deliveries <- 0;
  t.n_corrupt_markers <- 0;
  t.round_lag <- 0;
  t.n_realigns <- 0;
  t.rx_epoch <- 0;
  t.pending_epoch <- 0;
  t.rx_gen <- -1;
  t.n_epoch_discards <- 0;
  t.n_crash_syncs <- 0;
  t.n_stale_resets <- 0;
  t.realign_pending <- false;
  t.barrier_start <- Float.nan;
  t.n_forced_barriers <- 0;
  t.rd_max_seq <- -1;
  t.rd_max <- 0;
  t.rd_samples <- 0;
  Array.fill t.rd_hist 0 rd_buckets 0

(* Backpressure with hysteresis: raise above 3/4 of the budget, clear
   below 1/2, so a flow controller toggles once per congestion episode
   rather than on every packet near the threshold. *)
let update_pressure t =
  match t.budget with
  | None -> ()
  | Some b ->
    if (not t.pressure) && t.data_bytes * 4 > b * 3 then begin
      t.pressure <- true;
      match t.on_pressure with Some f -> f ~high:true | None -> ()
    end
    else if t.pressure && t.data_bytes * 2 < b then begin
      t.pressure <- false;
      match t.on_pressure with Some f -> f ~high:false | None -> ()
    end

(* Marker-cadence watchdog (not part of the paper's protocol, which
   assumes channels stay up): markers arrive on every live channel with a
   roughly periodic cadence, so a channel silent for [intervals] estimated
   marker gaps is declared dead. The check is lazy — evaluated when the
   scan blocks on the channel — so no periodic timer is required as long
   as other channels keep the scan moving; [tick] covers the rest. *)
let expected_gap t w c =
  if t.marker_gap.(c) > 0.0 then t.marker_gap.(c) else w.fallback

let check_dead t c =
  match t.wd with
  | None -> false
  | Some w ->
    t.dead.(c)
    ||
    let silence = t.now () -. t.last_rx.(c) in
    silence > float_of_int w.intervals *. expected_gap t w c
    && begin
         t.dead.(c) <- true;
         t.n_deaths <- t.n_deaths + 1;
         true
       end

let note_arrival t c ~is_marker =
  let now = t.now () in
  t.last_rx.(c) <- now;
  t.dead.(c) <- false;
  if is_marker then begin
    if t.last_marker_rx.(c) > neg_infinity then begin
      let gap = now -. t.last_marker_rx.(c) in
      let beyond_horizon =
        (* A gap so large the watchdog's own horizon expired inside it
           is either an outage that swallowed markers or a drastic
           cadence stretch — indistinguishable from one sample. Feeding
           an outage to the estimate would inflate every horizon
           derived from it (dead declaration, barrier staleness) by the
           outage length, so the sample is held back as a suspect and
           adopted only if the next gap corroborates it: outages are
           one-offs, cadence changes persist. Only a {e learned}
           estimate gates this — before one exists ([marker_gap] = 0,
           e.g. right after a barrier reseed) every sample is
           admissible, else a true cadence slower than the fallback
           horizon could never be learned at all. *)
        match t.wd with
        | Some w ->
          t.marker_gap.(c) > 0.0
          && gap > float_of_int w.intervals *. t.marker_gap.(c)
        | None -> false
      in
      if beyond_horizon then
        if t.gap_suspect.(c) > 0.0 then begin
          (* Corroborated: two consecutive beyond-horizon gaps. The
             smaller bounds the true cadence (both gaps are at least
             one real interval), so an outage in either inflates the
             adopted value the least this way. *)
          t.marker_gap.(c) <- Float.min gap t.gap_suspect.(c);
          t.gap_suspect.(c) <- 0.0
        end
        else t.gap_suspect.(c) <- gap
      else begin
        t.gap_suspect.(c) <- 0.0;
        t.marker_gap.(c) <-
          (if t.marker_gap.(c) <= 0.0 then gap
           else if gap > t.marker_gap.(c) then
             (* A gap above the estimate (but inside the horizon) is
                adopted outright, bounding the EWMA's memory: after a
                deliberate cadence stretch (an adaptive policy
                lengthening the marker interval) a half-gain average
                would need log2(stretch) intervals to catch up,
                declaring the channel dead spuriously the whole while.
                Adopting up / averaging down makes the estimate
                one-sided-safe: the watchdog can only fire after
                genuine silence at the newest observed cadence. *)
             gap
           else (0.5 *. t.marker_gap.(c)) +. (0.5 *. gap))
      end
    end;
    t.last_marker_rx.(c) <- now
  end

(* The stamp is recorded for the channel whose buffer the marker was
   drawn from, not [m.m_channel]: the arrival port is ground truth (a
   real receiver knows which wire a packet came in on), whereas the
   payload field could in principle be damaged in flight. *)
let apply_marker t c (m : Packet.marker) =
  t.n_markers <- t.n_markers + 1;
  t.force.(c) <- Some { Deficit.round = m.m_round; dc = m.m_dc };
  if Obs.Sink.active t.sink then
    Obs.Sink.emit t.sink
      (Obs.Event.v ~channel:c ~round:m.m_round ~dc:m.m_dc ~time:(t.now ())
         Obs.Event.Marker_applied);
  match t.on_credit, m.m_credit with
  | Some f, Some k -> f c k
  | Some _, None | None, _ -> ()

(* A channel parks at a reset marker, recording the marker's
   (epoch, generation) stamp so adoption can group channels by barrier.
   The assembly clock starts with the barrier's first parked channel and
   is cleared at adoption. Re-parking a channel (a later copy arriving
   before its barrier adopts) keeps the newest stamp: the §5 sender
   sequences one reset at a time per channel, so a later stamp means the
   earlier barrier was already adopted or force-expired. *)
let note_reset_pending t c ~epoch ~gen =
  if Float.is_nan t.barrier_start then t.barrier_start <- t.now ();
  t.reset_pending.(c) <- true;
  t.park_epoch.(c) <- epoch;
  t.park_gen.(c) <- gen

(* A tagged reset marker at or below the last adopted (epoch, generation)
   pair is a duplicate copy of a barrier this receiver already crossed —
   typically a sibling of the marker that triggered an eager crash-sync,
   or a copy that outlived a force-adopted barrier. Parking it would
   start a phantom barrier that can never complete (its siblings were
   consumed), trapping everything buffered behind it until the staleness
   horizon. Untagged markers (generation 0) predate the tag and always
   park. *)
let reset_stale t ~epoch ~gen =
  gen > 0 && (epoch < t.rx_epoch || (epoch = t.rx_epoch && gen <= t.rx_gen))

(* Markers take effect in their FIFO position within the channel's
   stream: absorb any markers at the head of the current channel's buffer
   before deciding how to serve it. A marker's (r, d) describes exactly
   the next data packet behind it on the same channel. Absorption stops
   at a reset marker: everything behind it belongs to the next epoch and
   stays buffered until the reset barrier completes. *)
let rec absorb_markers t c =
  let buf = t.buffers.(c) in
  if not (Fifo_queue.is_empty buf) then begin
    let pkt = Fifo_queue.peek_unsafe buf in
    if Packet.is_marker pkt then begin
      let m = Packet.get_marker pkt in
      if m.Packet.m_reset then begin
        ignore (Fifo_queue.pop_exn buf);
        t.n_markers <- t.n_markers + 1;
        if Obs.Sink.active t.sink then
          Obs.Sink.emit t.sink
            (Obs.Event.v ~channel:c ~round:m.Packet.m_round ~dc:m.Packet.m_dc
               ~time:(t.now ()) Obs.Event.Marker_applied);
        if reset_stale t ~epoch:m.Packet.m_epoch ~gen:m.Packet.m_gen then begin
          t.n_stale_resets <- t.n_stale_resets + 1;
          absorb_markers t c
        end
        else
          note_reset_pending t c ~epoch:m.Packet.m_epoch ~gen:m.Packet.m_gen
      end
      else begin
        ignore (Fifo_queue.pop_exn buf);
        apply_marker t c m;
        absorb_markers t c
      end
    end
  end

(* A marker from a later sender epoch arrived on [c]: the sender
   crash-restarted, so everything buffered ahead of the marker in [c]'s
   FIFO predates the crash. Data sent by the old incarnation can never be
   placed — the state that numbered it died with the sender — so it is
   discarded (counted), stale marker stamps with it, and the channel
   joins the crash reset barrier. This is what makes the barrier robust
   to losing the restart's own reset markers (a storm scenario: a link is
   down exactly while the sender reboots): any later periodic marker
   carries the epoch and has the same effect. *)
let crash_sync t c ~epoch ~gen =
  let buf = t.buffers.(c) in
  let bytes = ref 0 and pkts = ref 0 in
  let rec flush () =
    match Fifo_queue.pop buf with
    | None -> ()
    | Some pkt ->
      if not (Packet.is_marker pkt) then begin
        incr pkts;
        bytes := !bytes + pkt.Packet.size
      end;
      flush ()
  in
  flush ();
  if !pkts > 0 then begin
    t.n_data_buffered <- t.n_data_buffered - !pkts;
    t.data_bytes <- t.data_bytes - !bytes;
    t.n_epoch_discards <- t.n_epoch_discards + !pkts;
    update_pressure t;
    if Obs.Sink.active t.sink then
      Obs.Sink.emit t.sink
        (Obs.Event.v ~channel:c ~size:!bytes ~seq:!pkts ~time:(t.now ())
           Obs.Event.Epoch_discard)
  end;
  t.force.(c) <- None;
  note_reset_pending t c ~epoch ~gen;
  if t.waiting = c then t.waiting <- -1

(* The §5 barrier is complete when the reset marker has arrived on every
   channel — every channel, dead ones included. Excusing a
   watchdog-declared-dead channel here looks tempting (its marker may
   have been lost with the link) but mispairs generations: a channel
   revived an instant before the barrier fires is still marked dead
   while its reset marker is already in flight, the barrier completes
   without it, and the late marker then parks its channel in a phantom
   barrier that traps everything behind it until the staleness horizon.
   Waiting is safe either way: an in-flight marker arrives within a
   propagation delay (far inside the watchdog horizon) and pairs
   properly; a genuinely lost marker leaves the barrier to
   [barrier_stale], which force-adopts after the same bounded horizon
   the watchdog already trusts. *)
let barrier_complete t =
  let ok = ref true in
  for i = 0 to t.n - 1 do
    if not t.reset_pending.(i) then ok := false
  done;
  !ok

(* The generation tag pairs markers of the same barrier, but it cannot
   conjure a marker that a dead link genuinely dropped: a barrier whose
   missing member's reset marker was lost would wait forever on a
   demonstrably dead channel. The watchdog's cadence bound breaks the
   deadlock: an assembling barrier can only legitimately be waiting on
   in-flight packets, bounded by the same [intervals x gap] horizon the
   watchdog already trusts, so a barrier older than that is
   force-adopted. [reinit] is idempotent — every generation
   reinitializes to the same fresh state — so force-adopting costs at
   most a bounded quasi-FIFO episode, and the generation dedupe
   ([reset_stale]) absorbs the lost barrier's stragglers instead of
   letting them assemble a phantom. *)
let barrier_stale t =
  match t.wd with
  | None -> false
  | Some w ->
    (not (Float.is_nan t.barrier_start))
    &&
    let gap = ref w.fallback in
    for i = 0 to t.n - 1 do
      if t.marker_gap.(i) > !gap then gap := t.marker_gap.(i)
    done;
    t.now () -. t.barrier_start > float_of_int w.intervals *. !gap

let splice a c =
  Array.init (Array.length a - 1) (fun i -> if i < c then a.(i) else a.(i + 1))

(* Adopt a staged transition when its barrier completes — or plain
   [reinit] when none is staged. For a removal, whatever is still
   buffered on the leaving channel leaves with it: in healthy operation
   that buffer is empty (the goodbye reset marker is sequenced behind
   all the channel's data, so the scan drained it before the barrier
   could complete); only a watchdog-declared-dead removal can lose
   packets here, and those were stranded on a dead link anyway. *)
let adopt_staged t =
  match t.staged with
  | S_none -> Deficit.reinit t.d
  | S_retune q | S_add q ->
    t.staged <- S_none;
    Deficit.reconfigure t.d ~quanta:q;
    t.on_adopt ()
  | S_remove (c, q) ->
    t.staged <- S_none;
    Fifo_queue.iter t.buffers.(c) (fun pkt ~size ->
        if not (Packet.is_marker pkt) then begin
          t.n_data_buffered <- t.n_data_buffered - 1;
          t.data_bytes <- t.data_bytes - size
        end);
    t.buffers <- splice t.buffers c;
    t.force <- splice t.force c;
    t.reset_pending <- splice t.reset_pending c;
    t.park_epoch <- splice t.park_epoch c;
    t.park_gen <- splice t.park_gen c;
    t.last_rx <- splice t.last_rx c;
    t.last_marker_rx <- splice t.last_marker_rx c;
    t.marker_gap <- splice t.marker_gap c;
    t.gap_suspect <- splice t.gap_suspect c;
    t.dead <- splice t.dead c;
    t.ch_epoch <- splice t.ch_epoch c;
    t.n <- t.n - 1;
    update_pressure t;
    Deficit.reconfigure t.d ~quanta:q;
    t.on_adopt ()

(* Enforce a marker's stamp on its channel. If the stamp still pins
   below [G] after translation, the scan has over-advanced (forced or
   watchdog skips): re-anchor [round_lag] so this marker — and every
   later one, on any channel — pins at a consistent phase. *)
let pin_marker t c (s : Deficit.stamp) =
  let g = Deficit.round t.d in
  if s.Deficit.round + t.round_lag < g then begin
    t.round_lag <- g - s.Deficit.round;
    t.n_realigns <- t.n_realigns + 1
  end;
  Deficit.set_dc t.d c s.Deficit.dc;
  t.force.(c) <- None

(* The receiver's scan: serve the current channel per the simulated
   sender algorithm; skip channels whose marker round is ahead of the
   receiver's global round (condition C1 of §5); block when the packet
   logically due next has not physically arrived. *)
let rec progress t =
  let c = Deficit.current t.d in
  if not t.reset_pending.(c) then absorb_markers t c;
  if t.reset_pending.(c) then begin
    let complete = barrier_complete t in
    let stale = (not complete) && barrier_stale t in
    if complete || stale then begin
      (* Adopt the {e oldest} parked (epoch, generation) pair: barriers
         adopt in the order the sender issued them. A channel parked at
         a younger pair is the next barrier already assembling — it
         stays parked (assembly clock restarted) and its barrier adopts
         once its own markers complete it. Untagged parks (generation 0)
         join whatever pair adopts in their epoch. A stale barrier (a
         member's marker genuinely lost, see [barrier_stale]) is adopted
         the same way — reinit reaches the same state however the
         barrier assembled. *)
      if stale then t.n_forced_barriers <- t.n_forced_barriers + 1;
      let ae = ref max_int in
      for i = 0 to t.n - 1 do
        if t.reset_pending.(i) && t.park_epoch.(i) < !ae then
          ae := t.park_epoch.(i)
      done;
      let ag = ref max_int in
      for i = 0 to t.n - 1 do
        if
          t.reset_pending.(i)
          && t.park_epoch.(i) = !ae
          && t.park_gen.(i) > 0
          && t.park_gen.(i) < !ag
        then ag := t.park_gen.(i)
      done;
      adopt_staged t;
      Array.fill t.force 0 t.n None;
      let residual = ref false in
      for i = 0 to t.n - 1 do
        if t.reset_pending.(i) then
          if
            t.park_epoch.(i) > !ae
            || (t.park_epoch.(i) = !ae && t.park_gen.(i) > !ag)
          then residual := true
          else t.reset_pending.(i) <- false
      done;
      t.barrier_start <- (if !residual then t.now () else Float.nan);
      (* Reseed the watchdog's marker-cadence estimate with the epoch:
         the sender that just reset may also have changed its marker
         interval (adaptive policies do), and an estimate carried across
         the barrier would misjudge the new cadence. Until two markers
         of the new epoch arrive, [wd.fallback] stands in. *)
      Array.fill t.marker_gap 0 t.n 0.0;
      Array.fill t.gap_suspect 0 t.n 0.0;
      Array.fill t.last_marker_rx 0 t.n neg_infinity;
      t.n_resets <- t.n_resets + 1;
      t.waiting <- -1;
      t.wd_spin <- 0;
      t.round_lag <- 0;
      if !ae > t.rx_epoch then begin
        (* A crash barrier: adopt the sender's new incarnation. The two
           endpoints' round numberings restarted independently, so let
           the first marker absorbed from the new epoch re-anchor
           [round_lag] rather than C1-skipping across the gap. *)
        t.rx_epoch <- !ae;
        t.rx_gen <- (if !ag = max_int then -1 else !ag);
        t.n_crash_syncs <- t.n_crash_syncs + 1;
        t.realign_pending <- true
      end
      else if !ae = t.rx_epoch && !ag <> max_int && !ag > t.rx_gen then
        t.rx_gen <- !ag;
      if Obs.Sink.active t.sink then
        Obs.Sink.emit t.sink
          (Obs.Event.v ~round:t.n_resets ~time:(t.now ())
             Obs.Event.Reset_barrier);
      progress t
    end
    else begin
      (* This channel's old epoch is over; keep draining the others —
         unless every engine channel is already parked at its reset
         marker. That happens while a staged add waits for the appended
         channel's marker ([t.n] exceeds the engine width until the
         barrier adopts): advancing would spin through parked channels
         forever, so block until the missing marker arrives (or the
         watchdog declares its channel dead), either of which re-enters
         the scan and completes the barrier. *)
      let engine_n = Deficit.n_channels t.d in
      let all_parked = ref true in
      for i = 0 to engine_n - 1 do
        if not t.reset_pending.(i) then all_parked := false
      done;
      if not !all_parked then begin
        Deficit.advance t.d;
        progress t
      end
    end
  end
  else begin
    (match t.force.(c) with
    | Some s when t.realign_pending ->
      (* First marker after a crash barrier: both round numberings are
         fresh starts, so any lead it shows is an epoch offset, not lost
         packets — anchor [round_lag] so it pins now. A marker at or
         behind [G] means the simulation is already consistent. *)
      t.realign_pending <- false;
      if s.Deficit.round + t.round_lag > Deficit.round t.d then begin
        t.round_lag <- Deficit.round t.d - s.Deficit.round;
        t.n_realigns <- t.n_realigns + 1
      end
    | Some _ | None -> ());
    match t.force.(c) with
  | Some s when s.Deficit.round + t.round_lag > Deficit.round t.d ->
    (* We lost packets on [c] and arrived "too early": skip it this round
       and wait for our round number to catch up with the marker's. *)
    t.n_skips <- t.n_skips + 1;
    if Obs.Sink.active t.sink then
      Obs.Sink.emit t.sink
        (Obs.Event.v ~channel:c ~round:(Deficit.round t.d) ~time:(t.now ())
           Obs.Event.Skip);
    Deficit.advance t.d;
    progress t
  | force_state ->
    (if not (Deficit.in_service t.d) then begin
       Deficit.begin_visit t.d;
       match force_state with
       | Some s ->
         (* The marker gives the authoritative DC for serving the next
            data packet, superseding our simulated value. *)
         pin_marker t c s
       | None -> ()
     end
     else
       match force_state with
       | Some s when s.Deficit.round + t.round_lag <= Deficit.round t.d ->
         (* Mid-visit correction within the same round. *)
         pin_marker t c s
       | Some _ | None -> ());
    if Deficit.dc t.d c <= 0 then begin
      Deficit.advance t.d;
      progress t
    end
    else if Fifo_queue.is_empty t.buffers.(c) then begin
        let forced = t.force_need > 0 in
        if
          (forced || check_dead t c)
          && t.n_data_buffered > 0
          && t.wd_spin < t.n
        then begin
          (* The watchdog declared [c] dead and other channels hold data
             — or a Force_flush eviction needs buffered data out {e now}:
             pass the channel over instead of blocking. Delivery is
             quasi-FIFO from here until a marker — or the sender's reset
             barrier — resynchronizes the simulation. The
             [n_data_buffered] guard keeps an all-quiet receiver blocked
             rather than spinning the scan. *)
          t.wd_spin <- t.wd_spin + 1;
          if not forced then begin
            t.n_wd_skips <- t.n_wd_skips + 1;
            if Obs.Sink.active t.sink then
              Obs.Sink.emit t.sink
                (Obs.Event.v ~channel:c ~round:(Deficit.round t.d)
                   ~time:(t.now ()) Obs.Event.Watchdog_skip)
          end;
          if t.waiting = c then begin
            t.waiting <- -1;
            if Obs.Sink.active t.sink then
              Obs.Sink.emit t.sink
                (Obs.Event.v ~channel:c ~time:(t.now ()) Obs.Event.Unblock)
          end;
          Deficit.advance t.d;
          progress t
        end
        else begin
          if t.waiting <> c && Obs.Sink.active t.sink then
            Obs.Sink.emit t.sink
              (Obs.Event.v ~channel:c ~time:(t.now ()) Obs.Event.Block);
          t.waiting <- c (* Block: logical reception waits here. *)
        end
    end
    else begin
        let pkt = Fifo_queue.pop_exn t.buffers.(c) in
        if t.waiting = c && Obs.Sink.active t.sink then
          Obs.Sink.emit t.sink
            (Obs.Event.v ~channel:c ~time:(t.now ()) Obs.Event.Unblock);
        t.waiting <- -1;
        t.wd_spin <- 0;
        t.n_data_buffered <- t.n_data_buffered - 1;
        t.data_bytes <- t.data_bytes - pkt.Packet.size;
        (match t.budget with
        | Some b when t.force_need > 0 && t.data_bytes + t.force_need <= b ->
          (* The eviction freed enough room; resume normal blocking. *)
          t.force_need <- 0
        | Some _ | None -> ());
        update_pressure t;
        t.n_delivered <- t.n_delivered + 1;
        if Obs.Sink.active t.sink then
          Obs.Sink.emit t.sink
            (Obs.Event.v ~channel:c ~round:(Deficit.round t.d)
               ~dc:(Deficit.dc t.d c) ~size:pkt.Packet.size
               ~seq:pkt.Packet.seq ~time:(t.now ()) Obs.Event.Deliver);
        t.deliver ~channel:c pkt;
        Deficit.consume t.d ~size:pkt.Packet.size;
        progress t
    end
  end

(* Fallback eviction for data the scan cannot reach — e.g. buffered
   behind a reset marker whose barrier cannot complete. Pops the head of
   the byte-fullest buffer: a marker popped this way is absorbed normally
   (its stamp still re-pins the simulation); data is delivered out of
   scan order — quasi-FIFO at its worst, but memory-bounded. Returns
   whether anything was evicted. *)
let hard_pop t =
  let ci = ref (-1) and best = ref (-1) in
  for i = 0 to t.n - 1 do
    if not (Fifo_queue.is_empty t.buffers.(i)) then begin
      let b = Fifo_queue.bytes t.buffers.(i) in
      if b > !best then begin
        best := b;
        ci := i
      end
    end
  done;
  if !ci < 0 then false
  else begin
    let pkt = Fifo_queue.pop_exn t.buffers.(!ci) in
    let c = !ci in
      (if Packet.is_marker pkt then begin
         let m = Packet.get_marker pkt in
         if m.Packet.m_reset then begin
           t.n_markers <- t.n_markers + 1;
           (if reset_stale t ~epoch:m.Packet.m_epoch ~gen:m.Packet.m_gen then
              t.n_stale_resets <- t.n_stale_resets + 1
            else
              note_reset_pending t c ~epoch:m.Packet.m_epoch
                ~gen:m.Packet.m_gen);
           if Obs.Sink.active t.sink then
             Obs.Sink.emit t.sink
               (Obs.Event.v ~channel:c ~round:m.Packet.m_round
                  ~dc:m.Packet.m_dc ~time:(t.now ())
                  Obs.Event.Marker_applied)
         end
         else apply_marker t c m
       end
       else begin
         t.n_data_buffered <- t.n_data_buffered - 1;
         t.data_bytes <- t.data_bytes - pkt.Packet.size;
         t.n_delivered <- t.n_delivered + 1;
         t.n_forced_deliveries <- t.n_forced_deliveries + 1;
         if Obs.Sink.active t.sink then
           Obs.Sink.emit t.sink
             (Obs.Event.v ~channel:c ~size:pkt.Packet.size
                ~seq:pkt.Packet.seq ~time:(t.now ()) Obs.Event.Deliver);
         t.deliver ~channel:c pkt;
         update_pressure t
       end);
    true
  end

(* Force_flush eviction: make [need] bytes fit under the budget. First
   let the scan drain quasi-FIFO (blocks become bounded forced skips via
   [force_need]); whatever the scan cannot reach is evicted by
   [hard_pop]. Terminates: every iteration either frees enough room or
   removes at least one buffered packet. *)
let force_room t ~need ~budget =
  let continue = ref true in
  while !continue && t.data_bytes + need > budget && t.n_data_buffered > 0 do
    t.force_need <- need;
    t.wd_spin <- 0;
    progress t;
    if t.data_bytes + need > budget then
      if not (hard_pop t) then continue := false
  done;
  t.force_need <- 0

let receive t ~channel pkt =
  if channel < 0 || channel >= t.n then
    invalid_arg "Resequencer.receive: bad channel";
  let is_marker = Packet.is_marker pkt in
  if is_marker && not (Packet.marker_valid (Packet.get_marker pkt)) then begin
    (* Wire damage the link CRC missed, caught by the marker checksum:
       trusting the stamp would poison the (round, DC) simulation for a
       whole marker interval. Discard — the next good marker
       resynchronizes exactly as after a lost one (Theorem 5.1). The
       arrival still proves the channel is alive, but its cadence
       estimate only feeds on credible markers. *)
    note_arrival t channel ~is_marker:false;
    t.n_corrupt_markers <- t.n_corrupt_markers + 1;
    if Obs.Sink.active t.sink then
      Obs.Sink.emit t.sink
        (Obs.Event.v ~channel ~size:pkt.Packet.size ~time:(t.now ())
           Obs.Event.Corrupt_discard);
    progress t
  end
  else begin
    note_arrival t channel ~is_marker;
    t.wd_spin <- 0;
    if not is_marker then begin
      let s = pkt.Packet.seq in
      if s >= 0 then begin
        let d = if s < t.rd_max_seq then t.rd_max_seq - s else 0 in
        if d > t.rd_max then t.rd_max <- d;
        let b = if d >= rd_buckets then rd_buckets - 1 else d in
        t.rd_hist.(b) <- t.rd_hist.(b) + 1;
        t.rd_samples <- t.rd_samples + 1;
        if s > t.rd_max_seq then t.rd_max_seq <- s
      end
    end;
    (* Crash-sync (PROTOCOL.md §12): a valid marker from a later sender
       epoch is handled eagerly at arrival, not at its FIFO position —
       its mere existence proves everything buffered ahead of it on this
       channel is stale, and waiting for the scan to reach it could mean
       waiting forever (the scan may be blocked on data the crashed
       sender never sent). *)
    let consumed_here = ref false in
    if is_marker then begin
      let m = Packet.get_marker pkt in
      let e = m.Packet.m_epoch in
      if e > t.ch_epoch.(channel) then begin
        t.ch_epoch.(channel) <- e;
        if e > t.rx_epoch then begin
          if e > t.pending_epoch then t.pending_epoch <- e;
          crash_sync t channel ~epoch:e ~gen:m.Packet.m_gen;
          if m.Packet.m_reset then begin
            (* The restart's reset marker has done all its work here:
               flagging the channel and flushing stale data. Absorb it
               now instead of buffering it behind nothing. *)
            consumed_here := true;
            t.n_markers <- t.n_markers + 1;
            if Obs.Sink.active t.sink then
              Obs.Sink.emit t.sink
                (Obs.Event.v ~channel ~round:m.Packet.m_round
                   ~dc:m.Packet.m_dc ~time:(t.now ())
                   Obs.Event.Marker_applied)
          end
          (* A non-reset epoch-advanced marker (the reset marker itself
             was lost) is buffered normally below: once the barrier
             adopts, it pins the fresh engine at the sender's current
             position. *)
        end
      end
    end;
    if not !consumed_here then begin
    let accept =
      if is_marker then true
      else
        match t.budget with
        | None -> true
        | Some b when t.data_bytes + pkt.Packet.size <= b -> true
        | Some b ->
          t.n_overflows <- t.n_overflows + 1;
          if Obs.Sink.active t.sink then
            Obs.Sink.emit t.sink
              (Obs.Event.v ~channel ~size:pkt.Packet.size ~time:(t.now ())
                 Obs.Event.Buffer_overflow);
          (match t.overflow with
          | Drop_newest ->
            (* Refusing the arrival is a channel loss like any other:
               the marker machinery recovers the stream position. *)
            t.n_overflow_drops <- t.n_overflow_drops + 1;
            false
          | Force_flush ->
            force_room t ~need:pkt.Packet.size ~budget:b;
            let fits = t.data_bytes + pkt.Packet.size <= b in
            (* A packet bigger than the whole budget cannot be made to
               fit; it is dropped like any other overflow. *)
            if not fits then
              t.n_overflow_drops <- t.n_overflow_drops + 1;
            fits)
    in
    if accept then begin
      Fifo_queue.push t.buffers.(channel) ~size:pkt.Packet.size pkt;
      if not is_marker then begin
        t.n_data_buffered <- t.n_data_buffered + 1;
        t.data_bytes <- t.data_bytes + pkt.Packet.size;
        if t.data_bytes > t.max_data_bytes then
          t.max_data_bytes <- t.data_bytes;
        update_pressure t;
        if Obs.Sink.active t.sink then
          Obs.Sink.emit t.sink
            (Obs.Event.v ~channel ~size:pkt.Packet.size ~seq:pkt.Packet.seq
               ~time:(t.now ()) Obs.Event.Enqueue)
      end
    end;
    (* A channel staged for addition is not in the simulated engine yet,
       so the scan never visits it: absorb its head markers here so its
       reset marker can flag [reset_pending] and complete the barrier
       that adopts the wider bundle. *)
    if channel >= Deficit.n_channels t.d && not t.reset_pending.(channel) then
      absorb_markers t channel
    end;
    progress t
  end

let tick t =
  t.wd_spin <- 0;
  progress t

(* Receiver endpoint crash + restart (PROTOCOL.md §12): all protocol
   state — buffers, simulated engine, marker stamps, watchdog estimates,
   epoch knowledge — dies with the endpoint. Lifetime measurement
   counters survive (they model the operator's metrics store, not the
   endpoint). With [rx_epoch] at [min_int], the very next valid marker on
   each channel — the sender keeps its ordinary cadence, no out-of-band
   signal needed — triggers that channel's crash-sync, and the barrier
   rebuilds the engine once every live channel has reported in: cold
   recovery costs about one marker interval. Data arriving between the
   restart and a channel's first marker is buffered and then discarded by
   that crash-sync (counted in [epoch_discards]): the receiver has no
   state to place it with. Returns the number of buffered data packets
   wiped by the crash, for the caller's conservation accounting. *)
let crash_restart t =
  let wiped = t.n_data_buffered in
  let now = t.now () in
  if Obs.Sink.active t.sink then
    Obs.Sink.emit t.sink (Obs.Event.v ~time:now Obs.Event.Crash);
  Deficit.reconfigure t.d ~quanta:(Deficit.quanta t.d);
  t.staged <- S_none;
  let n = Deficit.n_channels t.d in
  if Array.length t.buffers <> n then begin
    (* A staged add/remove died with the endpoint: rebuild the runtime
       arrays at the engine's width. *)
    t.buffers <- Array.init n (fun _ -> Fifo_queue.create ());
    t.force <- Array.make n None;
    t.reset_pending <- Array.make n false;
    t.park_epoch <- Array.make n 0;
    t.park_gen <- Array.make n 0;
    t.last_rx <- Array.make n now;
    t.last_marker_rx <- Array.make n neg_infinity;
    t.marker_gap <- Array.make n 0.0;
    t.gap_suspect <- Array.make n 0.0;
    t.dead <- Array.make n false;
    t.ch_epoch <- Array.make n min_int
  end
  else begin
    (* [clear], not [recycle]: the bundle identity survives the crash,
       so high-water maxima stay lifetime measurements. *)
    Array.iter Fifo_queue.clear t.buffers;
    Array.fill t.force 0 n None;
    Array.fill t.reset_pending 0 n false;
    Array.fill t.park_epoch 0 n 0;
    Array.fill t.park_gen 0 n 0;
    Array.fill t.last_rx 0 n now;
    Array.fill t.last_marker_rx 0 n neg_infinity;
    Array.fill t.marker_gap 0 n 0.0;
    Array.fill t.gap_suspect 0 n 0.0;
    Array.fill t.dead 0 n false;
    Array.fill t.ch_epoch 0 n min_int
  end;
  t.n <- n;
  t.n_data_buffered <- 0;
  t.data_bytes <- 0;
  update_pressure t;
  t.force_need <- 0;
  t.waiting <- -1;
  t.wd_spin <- 0;
  t.round_lag <- 0;
  t.realign_pending <- false;
  t.barrier_start <- Float.nan;
  t.rx_epoch <- min_int;
  t.pending_epoch <- min_int;
  t.rx_gen <- -1;
  if Obs.Sink.active t.sink then
    Obs.Sink.emit t.sink (Obs.Event.v ~time:now Obs.Event.Restart);
  wiped

let transition_pending t = t.staged <> S_none

let require_unstaged t who =
  if t.staged <> S_none then
    invalid_arg (who ^ ": a transition is already staged (one per barrier)")

let check_quantum t who q =
  if q <= 0 then invalid_arg (who ^ ": quantum must be positive");
  match Deficit.max_packet t.d with
  | Some m when q < m ->
    invalid_arg
      (Printf.sprintf
         "%s: quantum %d below max packet size %d violates the \
          marker-recovery precondition (Quantum_i >= Max)"
         who q m)
  | Some _ | None -> ()

let retune t ~quanta =
  require_unstaged t "Resequencer.retune";
  if Array.length quanta <> Deficit.n_channels t.d then
    invalid_arg "Resequencer.retune: quanta width mismatch";
  Array.iter (check_quantum t "Resequencer.retune") quanta;
  t.staged <- S_retune (Array.copy quanta)

let add_channel t ~quantum =
  require_unstaged t "Resequencer.add_channel";
  check_quantum t "Resequencer.add_channel" quantum;
  (* The runtime arrays grow now — arrivals on the new channel must
     buffer, and the barrier must wait for its reset marker — while the
     simulated engine keeps the old width until the barrier adopts the
     staged vector. *)
  let q = Array.append (Deficit.quanta t.d) [| quantum |] in
  t.buffers <- Array.append t.buffers [| Fifo_queue.create () |];
  t.force <- Array.append t.force [| None |];
  t.reset_pending <- Array.append t.reset_pending [| false |];
  t.park_epoch <- Array.append t.park_epoch [| 0 |];
  t.park_gen <- Array.append t.park_gen [| 0 |];
  t.last_rx <- Array.append t.last_rx [| t.now () |];
  t.last_marker_rx <- Array.append t.last_marker_rx [| neg_infinity |];
  t.marker_gap <- Array.append t.marker_gap [| 0.0 |];
  t.gap_suspect <- Array.append t.gap_suspect [| 0.0 |];
  t.dead <- Array.append t.dead [| false |];
  t.ch_epoch <- Array.append t.ch_epoch [| t.rx_epoch |];
  t.n <- t.n + 1;
  t.staged <- S_add q;
  t.n - 1

let remove_channel t c =
  require_unstaged t "Resequencer.remove_channel";
  if c < 0 || c >= t.n then
    invalid_arg "Resequencer.remove_channel: bad channel";
  if t.n = 1 then
    invalid_arg "Resequencer.remove_channel: cannot remove the last channel";
  (* Nothing shrinks yet: the channel must keep receiving — and the scan
     keep draining — its in-flight data until its goodbye reset marker
     arrives and the barrier completes; [adopt_staged] splices then. *)
  t.staged <- S_remove (c, splice (Deficit.quanta t.d) c)

let delivered t = t.n_delivered

let quanta t = Deficit.quanta t.d

let pending t = t.n_data_buffered

let blocked_on t = if t.waiting < 0 then None else Some t.waiting

let skips t = t.n_skips

let watchdog_skips t = t.n_wd_skips

let dead_declarations t = t.n_deaths

let channel_dead t c =
  if c < 0 || c >= t.n then invalid_arg "Resequencer.channel_dead: bad channel";
  t.dead.(c)

let markers_seen t = t.n_markers

let resets t = t.n_resets
let forced_barriers t = t.n_forced_barriers
let stale_resets t = t.n_stale_resets

let round t = Deficit.round t.d

let buffer_high_water_packets t =
  (* Per-channel high waters do not peak simultaneously in general, but
     their sum bounds the simultaneous total and matches it for the
     common block-on-one-channel pattern. *)
  Array.fold_left (fun acc b -> acc + Fifo_queue.high_water_packets b) 0 t.buffers

let buffer_high_water_bytes t =
  Array.fold_left (fun acc b -> acc + Fifo_queue.high_water_bytes b) 0 t.buffers

let buffered_bytes t = t.data_bytes
let max_buffered_bytes t = t.max_data_bytes
let pressure_high t = t.pressure
let overflows t = t.n_overflows
let overflow_drops t = t.n_overflow_drops
let forced_deliveries t = t.n_forced_deliveries
let corrupt_marker_discards t = t.n_corrupt_markers
let round_realigns t = t.n_realigns
let epoch_discards t = t.n_epoch_discards
let crash_syncs t = t.n_crash_syncs

let reorder_depth_max t = t.rd_max
let reorder_depth_samples t = t.rd_samples

let reorder_depth_percentile t ~p =
  if not (p > 0.0 && p <= 1.0) then
    invalid_arg "Resequencer.reorder_depth_percentile: p must be in (0, 1]";
  if t.rd_samples = 0 then 0
  else begin
    (* Smallest depth d with |samples <= d| >= ceil(p * samples). *)
    let need =
      let x = p *. float_of_int t.rd_samples in
      let c = int_of_float (Float.ceil x) in
      if c < 1 then 1 else c
    in
    let rec walk b acc =
      if b >= rd_buckets - 1 then t.rd_max
      else
        let acc = acc + t.rd_hist.(b) in
        if acc >= need then b else walk (b + 1) acc
    in
    walk 0 0
  end

let drain t =
  let out = ref [] in
  let remaining = ref true in
  while !remaining do
    remaining := false;
    Array.iter
      (fun b ->
        match Fifo_queue.pop b with
        | Some pkt ->
          if not (Packet.is_marker pkt) then out := pkt :: !out;
          remaining := true
        | None -> ())
      t.buffers
  done;
  t.n_data_buffered <- 0;
  t.data_bytes <- 0;
  update_pressure t;
  (* Draining empties every channel buffer: there is no pending logical
     read to block on and no buffered stream position left for a recorded
     marker stamp to describe — clear both so [blocked_on] and the next
     scan do not act on stale state. *)
  t.waiting <- -1;
  Array.fill t.force 0 t.n None;
  List.rev !out
