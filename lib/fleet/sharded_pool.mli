(** Sharded bundle-pool fleet: record a churn workload once, replay it
    across N OCaml 5 domains, merge at a single barrier (DESIGN.md §10).

    The driving workload of a fleet benchmark is protocol-independent,
    so it is {e recorded} as a timestamped op tape — {!acquire},
    {!release}, {!push} over pool slot ids — and then {e replayed} by
    {!run}: one domain per shard, each with its own [Sim] loop, its own
    [Rng.stream] (indexed by shard from the master seed), and its own
    [Bundle_pool]. No protocol state is shared between shards;
    communication happens only at the merge barrier that builds the
    {!report}.

    {b Partition.} Bundles are assigned to shards by pool slot id
    ({!shard_of_bundle}): the slot is the unit of state reuse (a
    recycled slot bequeaths the next generation whatever wire tail the
    link is still serializing), so owning a slot means owning its whole
    recycling chain. Slots never interact — wires, resequencers and
    schedulers are per-slot — so each slot's replay is identical
    whatever other slots share its sim. Consequently [domains = 1]
    reproduces the legacy single-pool run byte-for-byte, and any
    [domains = N] merges to the same protocol aggregates (delivered
    packets/bytes, markers, per-generation shares); only wall-clock
    changes. Cross-bundle delivery ordering is {e not} preserved across
    shards — bundles are independent FIFO streams, and no protocol
    invariant spans them.

    The recorder shadows [Bundle_pool]'s slot allocator (LIFO free
    stack, doubling growth) so {!acquire} returns exactly the slot id
    the legacy single pool would have picked; the replay then drives
    that assignment verbatim through [Bundle_pool.acquire_slot]. *)

type t

val create :
  ?engine:Stripe_netsim.Sim.engine ->
  ?stamp_seq:bool ->
  ?initial_capacity:int ->
  ?clock:(unit -> float) ->
  domains:int ->
  seed:int ->
  Bundle_pool.config ->
  t
(** A recorder for a fleet sharded [domains] ways ([0] means
    {!auto_domains}). [engine], [stamp_seq], [initial_capacity] and
    [config] are handed to each shard's [Bundle_pool.create]; shard [k]
    receives the generator [Rng.stream ~seed k]. [clock] (e.g.
    [Unix.gettimeofday]) is sampled around each shard's replay for the
    {!type-report} timing fields; the default clock always reads 0. The
    library takes no Unix dependency, so callers inject the clock. *)

val domains : t -> int

val total_acquired : t -> int
(** Bundles recorded so far (matches [Bundle_pool.total_acquired] of the
    replayed pool at the same point in the op sequence). *)

val live_bundles : t -> int

val peak_live : t -> int
(** High-water live-bundle population over the recording. *)

val acquire : t -> at:float -> int
(** Record a bundle start at simulated time [at]; returns the slot id
    the legacy pool would assign (LIFO recycling). Times across all
    recorded ops must be non-decreasing. *)

val release : t -> at:float -> int -> unit
(** Record the end of a live bundle. *)

val push : t -> at:float -> int -> size:int -> unit
(** Record a data packet offered to a live bundle. *)

val shard_of_bundle : domains:int -> int -> int
(** [shard_of_bundle ~domains id] is the owning shard of pool slot [id]:
    a pure mix-then-reduce of the id, so a given seed always produces
    the same partition, independent of recording order. *)

val auto_domains : unit -> int
(** [Domain.recommended_domain_count ()], at least 1. *)

val resolve_domains : int -> int
(** [resolve_domains n] is [n], or {!auto_domains} when [n <= 0] — the
    [--domains 0] = "auto" convention. *)

val split_fleet : domains:int -> bundles:int -> int array array
(** [split_fleet ~domains ~bundles] partitions the static fleet
    [0 .. bundles-1] by {!shard_of_bundle}: element [k] lists the
    bundle ids shard [k] owns, in increasing order. For static fleets
    (no churn) bundle ids and slot ids coincide. *)

type gen_report = {
  ordinal : int;  (** Global acquisition order of this generation. *)
  slot : int;  (** Pool slot id (the recorded bundle id). *)
  shard : int;
  birth : float;
  death : float;
  pushed_packets : int;
  pushed_bytes : int;
  delivered_packets : int;
  delivered_bytes : int;
}
(** One released bundle generation, harvested at its release instant —
    the per-bundle record behind the churn gate's share metrics. *)

type shard_report = {
  shard : int;
  slots : int;  (** Distinct pool slots this shard owns. *)
  ops : int;  (** Tape length replayed. *)
  generations : int;  (** Released generations. *)
  delivered_packets : int;
  delivered_bytes : int;
  markers_sent : int;
  fifo_violations : int;
  first_violation : (float * int * int) option;
      (** [(time, slot, seq)] with the {e global} slot id. *)
  wall_s : float;
  end_time : float;  (** The shard sim's clock when its replay drained. *)
}

type report = {
  domains : int;
  shards : shard_report array;  (** Indexed by shard. *)
  gens : gen_report array;  (** All generations, sorted by [ordinal]. *)
  acquired : int;
  peak_live : int;
  delivered_packets : int;  (** Sum over shards. *)
  delivered_bytes : int;
  markers_sent : int;
  fifo_violations : int;
  first_violation : (float * int * int) option;  (** Earliest by time. *)
  wall_s : float;  (** Wall time of the whole parallel section. *)
  end_time : float;  (** Max over shards. *)
  efficiency : float;
      (** [sum of shard walls / (domains * wall_s)] — 1.0 is perfect
          scaling, [1/domains] is no speedup. *)
}

val run : t -> report
(** Replay the recorded tape: shard 0 on the calling domain, shards
    [1 .. domains-1] on spawned domains, then merge. Bundles still live
    at the end of the tape are not reported in [gens] (their deliveries
    still count in the shard totals). The recorder is not reusable
    after [run]. *)
