(** Flyweight bundle fleet over one shared simulation.

    One striped bundle — SRR engine, per-channel wires, resequencer,
    optionally a channel guard — is cheap to {e run} but expensive to
    {e build}: each instantiation allocates a dozen arrays, a handful of
    closures, and (naively) one event loop. A fleet experiment with
    thousands of short-lived bundles spends all its time constructing
    and discarding that scaffolding.

    The pool turns the bundle into a flyweight. All bundles share one
    {!Stripe_netsim.Sim} event loop and one calendar/heap queue; the
    per-bundle state lives in struct-of-arrays slots indexed by an
    integer bundle id. The heavyweight components — the sender's
    {!Stripe_core.Deficit} engine, the receiver's
    {!Stripe_core.Resequencer} (and guard, when enabled), the
    per-channel wire {!Stripe_packet.Fifo_queue}s, and the delivery
    closures the simulator calls — are created {e once per slot} and
    recycled across bundle generations in place
    ({!Stripe_core.Deficit.reconfigure},
    {!Stripe_core.Resequencer.recycle},
    {!Stripe_packet.Fifo_queue.recycle}), so churning a bundle through
    a warmed-up slot allocates almost nothing. Data packets are interned
    by size (they are immutable and the protocol never reads their
    measurement metadata), so the steady-state push path allocates only
    the simulator's event cell.

    {b The wire model.} Each slot-channel is a rate+delay pipe: a packet
    departs when the channel is free ([max now busy_until]), occupies it
    for [size*8/rate] seconds, and arrives [prop_delay] later. Arrival
    times on one channel are strictly increasing, so one prebuilt
    closure per slot-channel pops the wire FIFO — no per-packet closure,
    no per-event payload.

    {b Churn.} {!release} does not blank the wires: a physical link
    being handed to a new bundle still has the old owner's bits in
    flight, so the pool lets them drain — each slot-channel counts how
    many of its queued packets belong to dead generations and the
    arrival closure discards exactly those, in FIFO order, before
    feeding the new owner's traffic to its (recycled) resequencer. A
    freshly {!acquire}d slot therefore behaves exactly like a new bundle
    except that its channels may still be busy with the predecessor's
    tail. *)

(** Striping discipline run by every slot engine (PROTOCOL.md §14).

    - [Srr]: the paper's surplus round robin — fixed cyclic visit
      order, byte quanta, markers, full resequencer replay.
    - [Sprinklers seed]: Sprinklers-style randomized striping. Same
      quanta, same [Max + 2*Quantum] fairness bound, but each round
      visits the channels in a fresh pseudo-random permutation derived
      from [seed] and the round number ({!Stripe_core.Deficit.order}).
      Each slot derives its own sub-seed, so the fleet's permutations
      decorrelate. The permutation is a pure function of (seed, round),
      so the receiver's cloned engine replays it and the whole
      marker/reset machinery works unchanged. Pair with larger quanta
      (see {!Stripe_core.Sprinklers}) for variable-size stripes.
    - [Load_aware]: non-causal min-completion-time selection — each
      push goes to the channel that would finish serving it soonest
      given current wire serialization debt and effective rate
      (suspensions/quarantines still honored). No receiver engine can
      replay wire state, so these slots deliver in {e arrival} order
      (the resequencer is bypassed, markers are discarded, reset
      barriers and health retunes are no-ops): {!seq_inversions} is a
      diagnostic, not a violation, and FIFO checks do not apply. *)
type discipline = Srr | Sprinklers of int | Load_aware

type config = {
  rate_bps : float array;  (** Per-channel wire rate (bits/s, > 0). *)
  prop_delay : float array;  (** Per-channel one-way delay (s, >= 0). *)
  quanta : int array;  (** SRR quantum vector (bytes, > 0). *)
  marker_every : int;
      (** Emit a marker batch every this many rounds ([Round_end]
          position, like the reference striper); [0] disables markers —
          the resequencer then only ever blocks, never resynchronizes
          after a discard, so leave markers on for churned fleets. *)
  guard : bool;
      (** Route every arrival through a per-slot
          {!Stripe_core.Channel_guard} (tag stamper on the send side,
          reorder/duplicate filter on the receive side). The pool's
          wires are perfect FIFOs, so the guard rides its in-order fast
          path; enabling it measures the guard's fleet-scale cost and
          recycles its state with the slot. *)
  discipline : discipline;  (** Striping discipline, fleet-wide. *)
}
(** All arrays must have the same positive length (the channel count).
    The pool copies them at {!create}; later mutation has no effect. *)

type t

val create :
  ?initial_capacity:int ->
  ?stamp_seq:bool ->
  ?sender_aware:bool ->
  ?watchdog:Stripe_core.Resequencer.watchdog ->
  ?rng:Stripe_netsim.Rng.t ->
  ?health:Stripe_core.Health.config ->
  ?health_sink:Stripe_obs.Sink.t ->
  sim:Stripe_netsim.Sim.t ->
  config ->
  t
(** [create ~sim config] builds an empty pool scheduling on [sim].
    [initial_capacity] (default 64) slots are built eagerly; the pool
    doubles its slot table when {!acquire} finds no free slot.

    [stamp_seq] (default [false]) allocates each pushed data packet with
    a per-bundle sequence number instead of the interned flyweight, which
    arms the always-on FIFO monitor ({!fifo_violations},
    {!total_fifo_violations}) at the cost of one allocation per push.
    [sender_aware] (default [true]) makes slot engines track the pool's
    carrier state ({!set_channel_up}): a channel going dark is suspended
    in every live bundle (load moves to the survivors) and resuming fires
    the §5 reset barrier per bundle; with [false] senders stripe blindly
    and down-channel packets are simply eaten at the NIC. [watchdog]
    equips every slot resequencer with the marker-cadence dead-channel
    watchdog ({!Stripe_core.Resequencer.watchdog}) — recommended for any
    chaos run, since it is what keeps a storm from wedging receivers on
    silent channels.

    [rng] drives the per-channel wire-loss processes
    ({!set_channel_loss}); default: a pool-private seeded generator.
    [health] arms fleet-wide gray-failure self-healing (PROTOCOL.md
    §13): {e one} {!Stripe_core.Health} engine over the pool's channel
    classes — a channel is one physical facility shared by every
    bundle, so one gray link is one detection, not one per bundle.
    Drive it with {!health_tick}; [health_sink] receives its
    [Health_suspect]/[Probation]/[Quarantine]/[Reinstate] events.
    Raises [Invalid_argument] on a malformed config. *)

val n_channels : t -> int
val config : t -> config

val acquire : t -> int
(** Start a bundle: returns its id (a recycled slot when one is free,
    a fresh one otherwise). O(1) amortized; recycling allocates
    nothing. *)

val acquire_slot : t -> int -> int
(** [acquire_slot t id] starts a bundle on slot [id] specifically,
    growing the pool if [id] is beyond capacity. This is the directed
    acquire the sharded replay layer ({!Sharded_pool}) uses to
    reproduce a recorded global slot assignment: a slot's whole
    recycling chain — including the busy-wire tail one generation
    bequeaths the next — replays identically whatever other slots share
    the pool. O(free-list) rather than O(1); raises [Invalid_argument]
    if the slot is live. Returns [id]. *)

val release : t -> int -> unit
(** End bundle [id]: its in-flight wire tail is marked for discard (see
    the churn note above), its resequencer/engine/guard state is
    recycled in place for the next owner, and the id returns to the
    free list. Per-bundle counters are reset by the {e next}
    {!acquire}, so they remain readable after release for end-of-life
    harvesting. Raises [Invalid_argument] if [id] is not live. *)

val is_live : t -> int -> bool
val live_bundles : t -> int
val capacity : t -> int
(** Slots built so far (live + free). *)

val total_acquired : t -> int
(** Bundles ever started. *)

val recycles : t -> int
(** Releases so far = slot reuses made possible. *)

val push : t -> int -> size:int -> unit
(** Stripe one data packet of [size] bytes into bundle [id]: the slot's
    SRR engine picks the channel, the packet is transmitted on that
    slot-channel's wire, and marker batches are emitted at marked round
    boundaries exactly like {!Stripe_core.Striper.push} with a
    [Round_end] policy. Raises [Invalid_argument] if [id] is not live
    or [size] is not positive. *)

(** {2 Chaos: carrier storms and endpoint crash/restart}

    The chaos engine's levers (PROTOCOL.md §12). Channel carrier state
    is pool-wide — channel [c] of every bundle rides the same facility
    class, so one transition models a shared-risk-group failure across
    the whole fleet. Endpoint crashes are per bundle and per side.

    Conservation holds per live slot at quiescence (simulation drained,
    no packets in flight):
    {[ pushed = delivered + rx_pending + carrier_drops + wire_loss_drops
                + receiver_down_drops + rx_epoch_discards + rx_wiped ]}
    (pushes refused because the sender was crashed or fully suspended
    are counted separately and never enter [pushed]). A {!release}
    breaks the identity for that generation by design: its in-flight
    tail is discarded unattributed, exactly like the churn model. *)

val channel_up : t -> int -> bool

val set_channel_up : t -> int -> bool -> unit
(** Carrier transition for channel [c] fleet-wide. Down: packets
    transmitted on [c] are eaten at the NIC (data counted per slot,
    {!carrier_drops}); with [sender_aware], [c] is also suspended in
    every live bundle's engine. Up: with [sender_aware] every live
    bundle resumes [c] and fires its §5 reset barrier (epoch-stamped
    reset markers on all channels) to resynchronize its receiver.
    Crashed senders are skipped — {!restart_sender} re-derives
    suspensions from the carrier state of its moment. Idempotent. *)

val set_channel_loss : t -> int -> Stripe_netsim.Loss.t -> unit
(** Install a loss process on channel [c]'s wires fleet-wide (the gray
    half of the chaos palette — the carrier stays up, packets die in
    flight). [Stripe_netsim.Loss.none ()] clears it. Lost data is
    counted per slot ({!wire_loss_drops}) and per channel
    ({!channel_wire_lost}); lost markers vanish like everywhere else. *)

val scale_channel_rate : t -> int -> float -> unit
(** Scale channel [c]'s wire service rate fleet-wide relative to its
    {e nominal} configured rate: [0.1] is a 10x collapse, [1.0]
    restores. Raises unless the factor is positive. *)

val crash_sender : t -> int -> unit
(** Bundle [id]'s sending endpoint crashes: until {!restart_sender},
    {!push} drops (counted, {!sender_down_drops}, not counted as
    pushed). In-flight packets already on the wires are unaffected —
    they left the host. Raises if [id] is not live or already down. *)

val restart_sender : t -> int -> unit
(** The sender reboots with no striping state: engine rebuilt on the
    configured quanta, suspensions re-derived from current carrier
    state, guard stamper restarted, incarnation ({!sender_epoch})
    incremented, and epoch-stamped reset markers announce the new epoch
    so the receiver discards pre-crash leftovers and resynchronizes
    (the epoch rule, PROTOCOL.md §12). *)

val crash_receiver : t -> int -> int
(** Bundle [id]'s receiving endpoint crashes: all buffered data is
    wiped (returned, and accumulated in {!rx_wiped_packets}), the
    resequencer forgets its engine, epoch knowledge, and watchdog
    state, and until {!restart_receiver} every arrival is dropped on
    the floor (data counted, {!receiver_down_drops}). *)

val restart_receiver : t -> int -> unit
(** The receiver process is back, cold. Resynchronization needs no
    out-of-band signal: the sender's ordinary epoch-stamped markers
    drive per-channel crash-sync, then the barrier reinitializes the
    simulated engine — delivery resumes within about one marker
    interval. *)

val sender_down : t -> int -> bool
val receiver_down : t -> int -> bool

val sender_epoch : t -> int -> int
(** The slot's sender incarnation: 0 at {!acquire}, +1 per
    {!restart_sender}. *)

(** {2 Fleet-wide gray-failure self-healing (PROTOCOL.md §13)}

    One {!Stripe_core.Health} engine covers the whole pool: evidence is
    the pool-wide per-channel wire deltas (offered vs lost packets,
    offered vs served bytes), so a single gray facility is detected
    once and the verdict lands on every bundle riding it. Probation
    cuts the channel's quantum in {e every} live slot (sender
    [Deficit.retune] staged + receiver [Resequencer.retune], adopted
    together at that slot's §5 reset barrier, floored at the largest
    data packet ever pushed — the Thm 5.1 precondition); quarantine
    policy-suspends the channel fleet-wide ({!channel_quarantined}),
    survives carrier heals and sender restarts, and is honored by
    {!acquire} for bundles born during it. *)

val health : t -> Stripe_core.Health.t option

val health_tick : t -> now:float -> Stripe_core.Health.transition list
(** Close one evidence window and apply the verdicts fleet-wide. Call
    periodically (the [every] cadence of a [--health] spec). Slots
    whose receiver is mid-transition, or with a crashed endpoint, defer
    their retune ({!health_deferred_retunes}) and reconcile on a later
    tick. No-op returning [[]] without [health]. *)

val channel_quarantined : t -> int -> bool

val health_retunes : t -> int
(** Slot retunes applied by {!health_tick} (one per slot per vector
    change). *)

val health_deferred_retunes : t -> int
(** Slot retunes {!health_tick} deferred (transition pending). *)

val channel_wire_tx : t -> int -> int
(** Packets offered to channel [c]'s wires pool-wide (lost included). *)

val channel_wire_lost : t -> int -> int
(** Packets of channel [c] eaten in flight by the loss process. *)

(** {2 Always-on invariant monitors} *)

val set_fifo_check_after : t -> float -> unit
(** Quiet line for the FIFO monitor (default 0.0): delivered-sequence
    inversions are always counted in {!seq_inversions}, but only count
    as {e violations} at/after this time. Chaos legally degrades
    delivery to quasi-FIFO while its effects drain (Thm 5.1), so a
    chaos driver sets this past its last event plus a drain grace; in a
    chaos-free run the default arms the monitor from the start. *)

val inject_violation : t -> int -> unit
(** Test-only hook: poison bundle [id]'s FIFO monitor so its next
    delivery registers as a violation — proves the monitoring path
    actually fires. *)

val fifo_violations : t -> int -> int
val seq_inversions : t -> int -> int
(** Per-bundle monitor counters (require [stamp_seq]). *)

val total_fifo_violations : t -> int

val first_violation : t -> (float * int * int) option
(** [(time, bundle, seq)] of the first FIFO violation, for pinpointing
    a failing seed's event neighborhood. *)

val crashes : t -> int
val restarts : t -> int
(** Endpoint crash / restart events so far, both sides, pool-wide. *)

(** {2 Per-bundle counters}

    Valid for a live bundle and, until the slot is re-acquired, for a
    released one (end-of-life harvesting). *)

val birth_time : t -> int -> float
(** Simulated time of the bundle's {!acquire}. *)

val pushed_packets : t -> int -> int
val pushed_bytes : t -> int -> int

val delivered_packets : t -> int -> int
(** Data packets the slot's resequencer delivered in logical-reception
    order (markers are not counted). *)

val delivered_bytes : t -> int -> int

val in_flight_packets : t -> int -> int
(** Packets (data and markers) currently on the slot's wires, not
    counting a previous owner's still-draining tail. *)

val rx_high_water_packets : t -> int -> int
(** The slot resequencer's buffered-packet high-water mark. Restarted
    by the recycle at {!release}, so a reused slot reports the current
    owner's maximum, never a cross-bundle one. *)

val rx_pending_packets : t -> int -> int
(** Data packets currently buffered in the slot's resequencer. *)

val last_delivery_time : t -> int -> float
(** Time of the slot's most recent delivery; [nan] before the first.
    [restart - last pre-crash delivery → first post-restart delivery]
    is the chaos driver's recovery-time probe. *)

val carrier_drops : t -> int -> int
(** Data packets eaten at transmit because the selected channel's
    carrier was down. *)

val sender_down_drops : t -> int -> int
val no_channel_drops : t -> int -> int
(** Pushes refused: sender crashed / every channel suspended. Not
    counted as pushed. *)

val receiver_down_drops : t -> int -> int
(** Data arrivals dropped because the receiver was crashed. *)

val rx_wiped_packets : t -> int -> int
(** Buffered data wiped by receiver crashes ({!crash_receiver}). *)

val wire_loss_drops : t -> int -> int
(** The slot's data packets eaten in flight by {!set_channel_loss}. *)

val wire_busy_until : t -> float
(** The latest wire-serialization completion scheduled on any
    slot-channel. Under a {!scale_channel_rate} collapse the wire
    accrues serialization debt that drains long after the factor is
    restored; chaos drivers compare this against the current time to
    know when the backlog (plus propagation) has actually cleared. *)

val resync : t -> unit
(** Operator-initiated pool-wide §5 reset barrier: every live slot with
    both endpoints up fires a slot reset. The cadence watchdog can leave
    a resequencer trailing the stripe by a constant offset forever —
    skipping packets that were merely {e delayed} (a rate collapse)
    strands their late copies as a buffered surplus that periodic
    markers can never expunge (data packets carry no round identity).
    Quasi-FIFO allows the offset; the reset barrier removes it. Chaos
    drivers fire this once the fault horizon has passed, before arming
    strict post-incident FIFO checks. *)

val rx_epoch_discards : t -> int -> int
(** Pre-crash-epoch data the slot's resequencer flushed at crash-sync
    ({!Stripe_core.Resequencer.epoch_discards}). *)

val rx_crash_syncs : t -> int -> int
(** Completed crash-epoch barriers on the slot's resequencer. *)

val rx_resets : t -> int -> int
(** Completed §5 reset barriers on the slot's resequencer (crash
    barriers included). *)

val rx_forced_barriers : t -> int -> int
(** Stranded barriers the slot's resequencer force-adopted
    ({!Stripe_core.Resequencer.forced_barriers}): non-zero only when
    reset barriers overtook each other under chaos. *)

val rx_channel_dead : t -> int -> int -> bool
(** [rx_channel_dead t id c]: the slot watchdog's current verdict. *)

val rx_watchdog_skips : t -> int -> int
val rx_dead_declarations : t -> int -> int
(** Slot watchdog activity (see {!Stripe_core.Resequencer}). *)

(** {2 Pool-wide counters} *)

val total_delivered_packets : t -> int
val total_delivered_bytes : t -> int
val markers_sent : t -> int
