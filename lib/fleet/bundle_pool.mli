(** Flyweight bundle fleet over one shared simulation.

    One striped bundle — SRR engine, per-channel wires, resequencer,
    optionally a channel guard — is cheap to {e run} but expensive to
    {e build}: each instantiation allocates a dozen arrays, a handful of
    closures, and (naively) one event loop. A fleet experiment with
    thousands of short-lived bundles spends all its time constructing
    and discarding that scaffolding.

    The pool turns the bundle into a flyweight. All bundles share one
    {!Stripe_netsim.Sim} event loop and one calendar/heap queue; the
    per-bundle state lives in struct-of-arrays slots indexed by an
    integer bundle id. The heavyweight components — the sender's
    {!Stripe_core.Deficit} engine, the receiver's
    {!Stripe_core.Resequencer} (and guard, when enabled), the
    per-channel wire {!Stripe_packet.Fifo_queue}s, and the delivery
    closures the simulator calls — are created {e once per slot} and
    recycled across bundle generations in place
    ({!Stripe_core.Deficit.reconfigure},
    {!Stripe_core.Resequencer.recycle},
    {!Stripe_packet.Fifo_queue.recycle}), so churning a bundle through
    a warmed-up slot allocates almost nothing. Data packets are interned
    by size (they are immutable and the protocol never reads their
    measurement metadata), so the steady-state push path allocates only
    the simulator's event cell.

    {b The wire model.} Each slot-channel is a rate+delay pipe: a packet
    departs when the channel is free ([max now busy_until]), occupies it
    for [size*8/rate] seconds, and arrives [prop_delay] later. Arrival
    times on one channel are strictly increasing, so one prebuilt
    closure per slot-channel pops the wire FIFO — no per-packet closure,
    no per-event payload.

    {b Churn.} {!release} does not blank the wires: a physical link
    being handed to a new bundle still has the old owner's bits in
    flight, so the pool lets them drain — each slot-channel counts how
    many of its queued packets belong to dead generations and the
    arrival closure discards exactly those, in FIFO order, before
    feeding the new owner's traffic to its (recycled) resequencer. A
    freshly {!acquire}d slot therefore behaves exactly like a new bundle
    except that its channels may still be busy with the predecessor's
    tail. *)

type config = {
  rate_bps : float array;  (** Per-channel wire rate (bits/s, > 0). *)
  prop_delay : float array;  (** Per-channel one-way delay (s, >= 0). *)
  quanta : int array;  (** SRR quantum vector (bytes, > 0). *)
  marker_every : int;
      (** Emit a marker batch every this many rounds ([Round_end]
          position, like the reference striper); [0] disables markers —
          the resequencer then only ever blocks, never resynchronizes
          after a discard, so leave markers on for churned fleets. *)
  guard : bool;
      (** Route every arrival through a per-slot
          {!Stripe_core.Channel_guard} (tag stamper on the send side,
          reorder/duplicate filter on the receive side). The pool's
          wires are perfect FIFOs, so the guard rides its in-order fast
          path; enabling it measures the guard's fleet-scale cost and
          recycles its state with the slot. *)
}
(** All arrays must have the same positive length (the channel count).
    The pool copies them at {!create}; later mutation has no effect. *)

type t

val create : ?initial_capacity:int -> sim:Stripe_netsim.Sim.t -> config -> t
(** [create ~sim config] builds an empty pool scheduling on [sim].
    [initial_capacity] (default 64) slots are built eagerly; the pool
    doubles its slot table when {!acquire} finds no free slot. Raises
    [Invalid_argument] on a malformed config. *)

val n_channels : t -> int
val config : t -> config

val acquire : t -> int
(** Start a bundle: returns its id (a recycled slot when one is free,
    a fresh one otherwise). O(1) amortized; recycling allocates
    nothing. *)

val release : t -> int -> unit
(** End bundle [id]: its in-flight wire tail is marked for discard (see
    the churn note above), its resequencer/engine/guard state is
    recycled in place for the next owner, and the id returns to the
    free list. Per-bundle counters are reset by the {e next}
    {!acquire}, so they remain readable after release for end-of-life
    harvesting. Raises [Invalid_argument] if [id] is not live. *)

val is_live : t -> int -> bool
val live_bundles : t -> int
val capacity : t -> int
(** Slots built so far (live + free). *)

val total_acquired : t -> int
(** Bundles ever started. *)

val recycles : t -> int
(** Releases so far = slot reuses made possible. *)

val push : t -> int -> size:int -> unit
(** Stripe one data packet of [size] bytes into bundle [id]: the slot's
    SRR engine picks the channel, the packet is transmitted on that
    slot-channel's wire, and marker batches are emitted at marked round
    boundaries exactly like {!Stripe_core.Striper.push} with a
    [Round_end] policy. Raises [Invalid_argument] if [id] is not live
    or [size] is not positive. *)

(** {2 Per-bundle counters}

    Valid for a live bundle and, until the slot is re-acquired, for a
    released one (end-of-life harvesting). *)

val birth_time : t -> int -> float
(** Simulated time of the bundle's {!acquire}. *)

val pushed_packets : t -> int -> int
val pushed_bytes : t -> int -> int

val delivered_packets : t -> int -> int
(** Data packets the slot's resequencer delivered in logical-reception
    order (markers are not counted). *)

val delivered_bytes : t -> int -> int

val in_flight_packets : t -> int -> int
(** Packets (data and markers) currently on the slot's wires, not
    counting a previous owner's still-draining tail. *)

val rx_high_water_packets : t -> int -> int
(** The slot resequencer's buffered-packet high-water mark. Restarted
    by the recycle at {!release}, so a reused slot reports the current
    owner's maximum, never a cross-bundle one. *)

(** {2 Pool-wide counters} *)

val total_delivered_packets : t -> int
val total_delivered_bytes : t -> int
val markers_sent : t -> int
