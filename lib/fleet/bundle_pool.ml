(* Flyweight bundle fleet: thousands of striped bundles on one event
   loop, with all heavyweight per-bundle state pooled and recycled.

   Layout. Per-slot state is struct-of-arrays indexed by the bundle id;
   per-slot-channel state is flattened as [id * n_channels + c]. The
   components that are expensive to build — deficit engines,
   resequencers, guards, wire FIFOs, and the closures handed to the
   simulator and the resequencer — are created once when a slot is
   first built ([grow]) and thereafter recycled in place, never
   reallocated. Closures capture the pool record and their slot index
   and read the arrays at fire time, so growing the table (which
   replaces the arrays) never strands them.

   Wire and stale-event discipline. Each slot-channel wire is a
   rate+delay pipe: [busy_until] serializes departures, so arrival
   times are strictly increasing per slot-channel and the k-th arrival
   event to fire pops exactly the k-th packet pushed — the arrival
   closure needs no per-event payload. A [release] cannot cancel the
   arrival events already in the simulator, and deliberately does not
   reset [busy_until] or clear the wire: the link keeps draining its
   timeline. Instead [drop] records how many packets at the head of the
   wire belong to dead generations; the arrival closure discards
   exactly those (in FIFO order, at their true arrival times) before
   feeding the new owner's resequencer. Setting [drop] to the wire's
   current length at release is idempotent across rapid re-releases:
   whatever is on the wire at that instant is, by definition, dead. *)

open Stripe_packet
open Stripe_netsim
open Stripe_core

(* Striping discipline run by every slot engine in the pool (the fleet
   shares one facility set, so one discipline serves all bundles).

   [Srr] is the paper's deficit round-robin. [Sprinklers seed] keeps the
   same quanta and fairness bound but permutes the per-round visit order
   from [seed] (each slot decorrelates with its own derived seed) — the
   receiver replays the permutation from the cloned engine, so the whole
   marker/resequencer machinery is unchanged. [Load_aware] is the
   non-causal min-completion-time selector: each push goes to the
   channel that would finish serving it soonest given current wire debt.
   No receiver-side engine can replay that choice, so Load_aware slots
   bypass the resequencer and deliver in arrival order — quasi-FIFO
   metrics ([seq_inversions]) become diagnostic, not a violation. *)
type discipline = Srr | Sprinklers of int | Load_aware

type config = {
  rate_bps : float array;
  prop_delay : float array;
  quanta : int array;
  marker_every : int;
  guard : bool;
  discipline : discipline;
}

type t = {
  sim : Sim.t;
  n_ch : int;
  rate_bps : float array;
  prop_delay : float array;
  quanta : int array;
  marker_every : int;
  use_guard : bool;
  discipline : discipline;
  stamp_seq : bool;
      (* Allocate a per-slot-sequenced data packet per push instead of the
         interned flyweight, so deliveries can be FIFO-checked. *)
  sender_aware : bool;  (* do slot engines see pool carrier state? *)
  watchdog : Resequencer.watchdog option;
  policy : Marker.policy option;
  now_fn : unit -> float;  (* shared by every slot's resequencer *)
  (* Data packets are immutable and the protocol never reads their
     measurement metadata, so one packet per distinct size serves every
     bundle in the fleet. *)
  interned : (int, Packet.t) Hashtbl.t;
  (* Pool-wide carrier state: channel [c] of EVERY bundle rides the same
     physical facility class, so one flag takes the whole fleet's channel
     [c] down at once — the shared-risk-group model the chaos engine
     drives. All up at create. *)
  ch_up : bool array;
  (* Gray-failure state, pool-wide per channel (PROTOCOL.md §13). The
     wire impairments model a degrading facility: [ch_loss] eats packets
     in flight, [rate_scale] shrinks the service rate relative to
     nominal. [ch_quarantined] is the health engine's verdict — policy
     suspension layered on top of carrier state, honored by [acquire],
     [restart_sender], and the full-heal barrier condition. One health
     engine serves the whole fleet: channel [c] is one physical
     facility, so one detection covers every bundle riding it. *)
  rng : Rng.t;  (* wire-loss evaluation *)
  ch_loss : Loss.t array;
  rate_scale : float array;
  ch_quarantined : bool array;
  mutable health : Health.t option;
  (* Pool-wide per-channel wire counters — the health engine's evidence.
     [wtx] counts packets offered to the wire (lost ones included),
     [wlost] the ones the loss process ate, [wtx_b]/[wdone_b] bytes
     offered / bytes whose wire service completed (goodput collapse
     shows as a widening gap). [last_*] are the previous tick's
     snapshots. *)
  wtx_p : int array;
  wlost_p : int array;
  wtx_b : int array;
  wdone_b : int array;
  last_wtx_p : int array;
  last_wlost_p : int array;
  last_wtx_b : int array;
  last_wdone_b : int array;
  mutable max_push : int;  (* largest data packet seen: probation floor *)
  mutable health_retunes : int;
  mutable health_deferred : int;
  mutable cap : int;
  (* Per-slot (length = cap). *)
  mutable live : bool array;
  mutable tx : Deficit.t array;
  mutable rx : Resequencer.t array;
  mutable deliverf : (channel:int -> Packet.t -> unit) array;
      (* The slot's delivery closure — what the resequencer calls, and
         what [Load_aware] slots call directly (arrival order). *)
  mutable gtx : Channel_guard.Tx.t array;  (* empty unless [use_guard] *)
  mutable grx : Channel_guard.t array;  (* empty unless [use_guard] *)
  mutable next_mark : int array;  (* first round >= this gets markers *)
  mutable birth : float array;
  mutable pushed_p : int array;
  mutable pushed_b : int array;
  mutable delivered_p : int array;
  mutable delivered_b : int array;
  (* Chaos state, per slot. [tx_epoch] is the sender incarnation stamped
     on the slot's markers (PROTOCOL.md §12); only [restart_sender] bumps
     it. The drop counters keep the conservation identity closed:
     pushed = delivered + rx pending + in flight + carrier_drops
     + rx_down_drops + epoch_discards(rx) + rx_wiped. *)
  mutable tx_epoch : int array;
  mutable tx_gen : int array;
      (* Reset-barrier generation within the epoch: bumped by every
         [send_slot_reset], stamped on all the slot's markers so the
         receiver can pair barrier fragments by generation
         ([Packet.marker.m_gen]); back to 0 with each incarnation. *)
  mutable tx_down : bool array;  (* sender crashed, not yet restarted *)
  mutable rx_down : bool array;  (* receiver crashed, not yet restarted *)
  mutable next_seq : int array;  (* next data seq when [stamp_seq] *)
  mutable last_seq : int array;  (* highest delivered seq (FIFO monitor) *)
  mutable last_delivery : float array;  (* time of last delivery; nan before *)
  mutable carrier_dp : int array;  (* data dropped at transmit: carrier down *)
  mutable tx_down_dp : int array;  (* pushes refused: sender crashed *)
  mutable no_active_dp : int array;  (* pushes dropped: all channels suspended *)
  mutable rx_down_dp : int array;  (* data arrivals dropped: receiver crashed *)
  mutable rx_wiped_p : int array;  (* buffered data wiped by receiver crash *)
  mutable wire_dp : int array;  (* data eaten in flight by wire loss *)
  mutable fifo_viol : int array;  (* FIFO monitor hits after the quiet line *)
  mutable ooo : int array;  (* all delivered-seq inversions (diagnostic) *)
  (* Per-slot-channel (length = cap * n_ch). *)
  mutable wire : Packet.t Fifo_queue.t array;
  mutable busy : float array;  (* channel transmitting until this time *)
  mutable drop : int array;  (* head-of-wire packets of dead generations *)
  mutable rx_tag : int array;  (* guard tag the next arrival carries *)
  mutable arrive : (unit -> unit) array;  (* prebuilt, one per slot-channel *)
  (* Free-slot stack. *)
  mutable free : int array;
  mutable n_free : int;
  mutable n_live : int;
  mutable n_acquired : int;
  mutable n_recycled : int;
  mutable total_dp : int;
  mutable total_db : int;
  mutable markers : int;
  (* Chaos state, pool-wide. *)
  mutable fifo_check_after : float;
      (* FIFO violations only count at/after this time: quasi-FIFO
         slippage is legal while chaos is still draining (Thm 5.1), so
         the driver sets this past its last event plus a drain grace. *)
  mutable fifo_violations : int;
  mutable first_violation : (float * int * int) option;  (* time, slot, seq *)
  mutable n_crashes : int;
  mutable n_restarts : int;
}

let n_channels t = t.n_ch

let config t =
  {
    rate_bps = Array.copy t.rate_bps;
    prop_delay = Array.copy t.prop_delay;
    quanta = Array.copy t.quanta;
    marker_every = t.marker_every;
    guard = t.use_guard;
    discipline = t.discipline;
  }

let check_live t id what =
  if id < 0 || id >= t.cap || not t.live.(id) then
    invalid_arg (Printf.sprintf "Bundle_pool.%s: bundle %d is not live" what id)

let check_slot t id what =
  if id < 0 || id >= t.cap then
    invalid_arg (Printf.sprintf "Bundle_pool.%s: bad bundle id %d" what id)

(* Last hop into the slot's resequencer. A crashed receiver
   ([rx_down]) hears nothing: data is dropped and counted (markers are
   uncounted everywhere, so they just vanish). The guard sits below this
   point — it is a link-layer filter whose state rides the link, not the
   endpoint, so a receiver crash does not recycle it. *)
let rx_ingest t id c pkt =
  if t.rx_down.(id) then begin
    if not (Packet.is_marker pkt) then
      t.rx_down_dp.(id) <- t.rx_down_dp.(id) + 1
  end
  else
    match t.discipline with
    | Load_aware ->
      (* No receiver-side engine can replay a load-based choice (it
         depends on wire state the receiver never sees), so there is no
         resequencer to drive: data delivers in arrival order and
         markers — which only exist to replay a sender engine — are
         discarded. *)
      if not (Packet.is_marker pkt) then t.deliverf.(id) ~channel:c pkt
    | Srr | Sprinklers _ -> Resequencer.receive t.rx.(id) ~channel:c pkt

(* Feed one surviving arrival to the slot's receive side. With the
   guard on, the tag is reproduced from a per-slot-channel counter: the
   wire is a perfect FIFO, so arrivals carry consecutive tags and the
   guard always rides its in-order fast path (the counter models the
   tag the packet would carry; carrier drops and endpoint crashes never
   desynchronize it because it counts arrivals, not transmissions). *)
let feed t id c pkt =
  if t.use_guard then begin
    let sc = (id * t.n_ch) + c in
    let tag = t.rx_tag.(sc) in
    t.rx_tag.(sc) <- tag + 1;
    Channel_guard.receive t.grx.(id) ~channel:c ~tag pkt
  end
  else rx_ingest t id c pkt

let make_arrive t id c =
  let sc = (id * t.n_ch) + c in
  fun () ->
    let pkt = Fifo_queue.pop_exn t.wire.(sc) in
    (* The wire finished serving these bytes whichever generation owns
       them — [wdone_b] measures the facility, not the bundle. *)
    t.wdone_b.(c) <- t.wdone_b.(c) + pkt.Packet.size;
    if t.drop.(sc) > 0 then t.drop.(sc) <- t.drop.(sc) - 1
    else feed t id c pkt

let make_deliver t id =
  fun ~channel:_ (pkt : Packet.t) ->
    t.delivered_p.(id) <- t.delivered_p.(id) + 1;
    t.delivered_b.(id) <- t.delivered_b.(id) + pkt.Packet.size;
    t.total_dp <- t.total_dp + 1;
    t.total_db <- t.total_db + pkt.Packet.size;
    let now = Sim.now t.sim in
    t.last_delivery.(id) <- now;
    if t.stamp_seq then begin
      (* Always-on FIFO monitor: past the quiet line every delivery must
         carry a seq above everything already delivered (gaps are fine —
         those are counted drops). Seq 0 is a predecessor generation's
         interned packet; never judged. *)
      let s = pkt.Packet.seq in
      if s > 0 then begin
        if s < t.last_seq.(id) then begin
          t.ooo.(id) <- t.ooo.(id) + 1;
          (* Arrival order is Load_aware's delivery contract — there is
             no resequencer to repair wire skew, so an inversion is a
             property of the channels, not a protocol violation.
             [seq_inversions] still counts it as a diagnostic. *)
          if now >= t.fifo_check_after && t.discipline <> Load_aware then begin
            t.fifo_viol.(id) <- t.fifo_viol.(id) + 1;
            t.fifo_violations <- t.fifo_violations + 1;
            if t.first_violation = None then
              t.first_violation <- Some (now, id, s)
          end
        end
        else t.last_seq.(id) <- s
      end
    end

(* Visit order for slot [i]'s engine. Sprinklers slots each derive
   their own seed so the fleet's permutations decorrelate (every bundle
   rotating onto the same channel in the same round would synchronize
   bursts on one facility); the receiver's clone carries the order, so
   both sides replay the same permutation stream. *)
let slot_order t i =
  match t.discipline with
  | Sprinklers seed -> Deficit.Permuted (seed + (i * 0x632be5ab))
  | Srr | Load_aware -> Deficit.Fixed

(* Build slots [t.cap, cap): every expensive component a bundle will
   ever need on this slot is created here, exactly once. *)
let grow_to t cap =
  let old = t.cap in
  let extend make a = Array.init cap (fun i -> if i < old then a.(i) else make i) in
  t.live <- extend (fun _ -> false) t.live;
  t.tx <-
    extend
      (fun i ->
        Deficit.create ~order:(slot_order t i) ~quanta:(Array.copy t.quanta) ())
      t.tx;
  t.deliverf <- extend (fun i -> make_deliver t i) t.deliverf;
  t.rx <-
    extend
      (fun i ->
        Resequencer.create
          ~deficit:(Deficit.clone_initial t.tx.(i))
          ~now:t.now_fn ?watchdog:t.watchdog ~deliver:t.deliverf.(i) ())
      t.rx;
  if t.use_guard then begin
    t.gtx <- extend (fun _ -> Channel_guard.Tx.create ~n:t.n_ch) t.gtx;
    t.grx <-
      extend
        (fun i ->
          Channel_guard.create ~n:t.n_ch ~now:t.now_fn
            ~deliver:(fun ~channel pkt -> rx_ingest t i channel pkt)
            ())
        t.grx
  end;
  t.next_mark <- extend (fun _ -> 0) t.next_mark;
  t.birth <- extend (fun _ -> 0.0) t.birth;
  t.pushed_p <- extend (fun _ -> 0) t.pushed_p;
  t.pushed_b <- extend (fun _ -> 0) t.pushed_b;
  t.delivered_p <- extend (fun _ -> 0) t.delivered_p;
  t.delivered_b <- extend (fun _ -> 0) t.delivered_b;
  t.tx_epoch <- extend (fun _ -> 0) t.tx_epoch;
  t.tx_gen <- extend (fun _ -> 0) t.tx_gen;
  t.tx_down <- extend (fun _ -> false) t.tx_down;
  t.rx_down <- extend (fun _ -> false) t.rx_down;
  t.next_seq <- extend (fun _ -> 1) t.next_seq;
  t.last_seq <- extend (fun _ -> 0) t.last_seq;
  t.last_delivery <- extend (fun _ -> Float.nan) t.last_delivery;
  t.carrier_dp <- extend (fun _ -> 0) t.carrier_dp;
  t.tx_down_dp <- extend (fun _ -> 0) t.tx_down_dp;
  t.no_active_dp <- extend (fun _ -> 0) t.no_active_dp;
  t.rx_down_dp <- extend (fun _ -> 0) t.rx_down_dp;
  t.rx_wiped_p <- extend (fun _ -> 0) t.rx_wiped_p;
  t.wire_dp <- extend (fun _ -> 0) t.wire_dp;
  t.fifo_viol <- extend (fun _ -> 0) t.fifo_viol;
  t.ooo <- extend (fun _ -> 0) t.ooo;
  let scap = cap * t.n_ch in
  let sold = old * t.n_ch in
  let extend_sc make a =
    Array.init scap (fun i -> if i < sold then a.(i) else make i)
  in
  t.wire <- extend_sc (fun _ -> Fifo_queue.create ()) t.wire;
  t.busy <- extend_sc (fun _ -> 0.0) t.busy;
  t.drop <- extend_sc (fun _ -> 0) t.drop;
  t.rx_tag <- extend_sc (fun _ -> 0) t.rx_tag;
  t.arrive <-
    extend_sc (fun sc -> make_arrive t (sc / t.n_ch) (sc mod t.n_ch)) t.arrive;
  t.free <- extend (fun _ -> 0) t.free;
  (* Stack the new slots so the lowest id comes off first. *)
  for id = cap - 1 downto old do
    t.free.(t.n_free) <- id;
    t.n_free <- t.n_free + 1
  done;
  t.cap <- cap

let create ?(initial_capacity = 64) ?(stamp_seq = false) ?(sender_aware = true)
    ?watchdog ?rng ?health ?health_sink ~sim (config : config) =
  let n = Array.length config.rate_bps in
  if n = 0 then invalid_arg "Bundle_pool.create: no channels";
  if Array.length config.prop_delay <> n || Array.length config.quanta <> n
  then invalid_arg "Bundle_pool.create: config arrays differ in length";
  if Array.exists (fun r -> not (r > 0.0)) config.rate_bps then
    invalid_arg "Bundle_pool.create: rates must be positive";
  if Array.exists (fun d -> not (d >= 0.0)) config.prop_delay then
    invalid_arg "Bundle_pool.create: delays must be non-negative";
  if Array.exists (fun q -> q <= 0) config.quanta then
    invalid_arg "Bundle_pool.create: quanta must be positive";
  if config.marker_every < 0 then
    invalid_arg "Bundle_pool.create: marker_every must be >= 0";
  if initial_capacity <= 0 then
    invalid_arg "Bundle_pool.create: initial_capacity must be positive";
  let t =
    {
      sim;
      n_ch = n;
      rate_bps = Array.copy config.rate_bps;
      prop_delay = Array.copy config.prop_delay;
      quanta = Array.copy config.quanta;
      marker_every = config.marker_every;
      use_guard = config.guard;
      discipline = config.discipline;
      stamp_seq;
      sender_aware;
      watchdog;
      policy =
        (if config.marker_every > 0 then
           Some (Marker.make ~every_rounds:config.marker_every ())
         else None);
      now_fn = (fun () -> Sim.now sim);
      interned = Hashtbl.create 64;
      ch_up = Array.make n true;
      rng = (match rng with Some r -> r | None -> Rng.create 0x5712e);
      ch_loss = Array.init n (fun _ -> Loss.none ());
      rate_scale = Array.make n 1.0;
      ch_quarantined = Array.make n false;
      health = None;
      wtx_p = Array.make n 0;
      wlost_p = Array.make n 0;
      wtx_b = Array.make n 0;
      wdone_b = Array.make n 0;
      last_wtx_p = Array.make n 0;
      last_wlost_p = Array.make n 0;
      last_wtx_b = Array.make n 0;
      last_wdone_b = Array.make n 0;
      max_push = 0;
      health_retunes = 0;
      health_deferred = 0;
      cap = 0;
      live = [||];
      tx = [||];
      rx = [||];
      deliverf = [||];
      gtx = [||];
      grx = [||];
      next_mark = [||];
      birth = [||];
      pushed_p = [||];
      pushed_b = [||];
      delivered_p = [||];
      delivered_b = [||];
      tx_epoch = [||];
      tx_gen = [||];
      tx_down = [||];
      rx_down = [||];
      next_seq = [||];
      last_seq = [||];
      last_delivery = [||];
      carrier_dp = [||];
      tx_down_dp = [||];
      no_active_dp = [||];
      rx_down_dp = [||];
      rx_wiped_p = [||];
      wire_dp = [||];
      fifo_viol = [||];
      ooo = [||];
      wire = [||];
      busy = [||];
      drop = [||];
      rx_tag = [||];
      arrive = [||];
      free = [||];
      n_free = 0;
      n_live = 0;
      n_acquired = 0;
      n_recycled = 0;
      total_dp = 0;
      total_db = 0;
      markers = 0;
      fifo_check_after = 0.0;
      fifo_violations = 0;
      first_violation = None;
      n_crashes = 0;
      n_restarts = 0;
    }
  in
  (match health with
  | Some config ->
    t.health <-
      Some
        (Health.create ~config
           ~live:(fun c -> c >= 0 && c < n && t.ch_up.(c))
           ?sink:health_sink ~n ())
  | None -> ());
  grow_to t initial_capacity;
  t

let activate t id =
  t.live.(id) <- true;
  t.birth.(id) <- Sim.now t.sim;
  t.pushed_p.(id) <- 0;
  t.pushed_b.(id) <- 0;
  t.delivered_p.(id) <- 0;
  t.delivered_b.(id) <- 0;
  t.tx_epoch.(id) <- 0;
  t.tx_gen.(id) <- 0;
  t.tx_down.(id) <- false;
  t.rx_down.(id) <- false;
  t.next_seq.(id) <- 1;
  t.last_seq.(id) <- 0;
  t.last_delivery.(id) <- Float.nan;
  t.carrier_dp.(id) <- 0;
  t.tx_down_dp.(id) <- 0;
  t.no_active_dp.(id) <- 0;
  t.rx_down_dp.(id) <- 0;
  t.rx_wiped_p.(id) <- 0;
  t.wire_dp.(id) <- 0;
  t.fifo_viol.(id) <- 0;
  t.ooo.(id) <- 0;
  (* The slot engine starts from the link state of the moment, not from
     any predecessor's suspensions (release's reconfigure cleared those):
     a bundle born mid-storm never stripes onto a channel that is already
     known to be dark — or already quarantined by the health engine. *)
  if t.sender_aware then
    for c = 0 to t.n_ch - 1 do
      if not t.ch_up.(c) || t.ch_quarantined.(c) then
        Deficit.suspend t.tx.(id) c
    done;
  t.n_live <- t.n_live + 1;
  t.n_acquired <- t.n_acquired + 1

let acquire t =
  if t.n_free = 0 then grow_to t (2 * t.cap);
  t.n_free <- t.n_free - 1;
  let id = t.free.(t.n_free) in
  activate t id;
  id

let acquire_slot t id =
  if id < 0 then invalid_arg "Bundle_pool.acquire_slot: negative id";
  while id >= t.cap do
    grow_to t (2 * t.cap)
  done;
  if t.live.(id) then invalid_arg "Bundle_pool.acquire_slot: slot is live";
  (* Swap-remove [id] from the free stack. Directed acquires do not
     preserve the LIFO order of the remaining stack — a replay drives
     every acquire explicitly, so the local stack order is never
     consulted. *)
  let i = ref 0 in
  while !i < t.n_free && t.free.(!i) <> id do
    incr i
  done;
  if !i >= t.n_free then invalid_arg "Bundle_pool.acquire_slot: slot not free";
  t.n_free <- t.n_free - 1;
  t.free.(!i) <- t.free.(t.n_free);
  activate t id;
  id

let release t id =
  check_live t id "release";
  let base = id * t.n_ch in
  for c = 0 to t.n_ch - 1 do
    let sc = base + c in
    (* Everything on the wire right now — including any still-undropped
       tail of an even earlier generation — is dead. [busy] is kept:
       the link finishes transmitting what it already accepted. *)
    t.drop.(sc) <- Fifo_queue.length t.wire.(sc);
    t.rx_tag.(sc) <- 0
  done;
  Resequencer.recycle t.rx.(id);
  Deficit.reconfigure t.tx.(id) ~quanta:t.quanta;
  if t.use_guard then begin
    Channel_guard.recycle t.grx.(id);
    Channel_guard.Tx.reset t.gtx.(id)
  end;
  t.next_mark.(id) <- 0;
  t.live.(id) <- false;
  t.n_live <- t.n_live - 1;
  t.n_recycled <- t.n_recycled + 1;
  t.free.(t.n_free) <- id;
  t.n_free <- t.n_free + 1

let is_live t id = id >= 0 && id < t.cap && t.live.(id)
let live_bundles t = t.n_live
let capacity t = t.cap
let total_acquired t = t.n_acquired
let recycles t = t.n_recycled

let intern t size =
  try Hashtbl.find t.interned size
  with Not_found ->
    let pkt = Packet.data ~seq:0 ~size () in
    Hashtbl.add t.interned size pkt;
    pkt

(* Put one packet (data or marker) on a slot-channel wire. A dark
   carrier eats the packet at the NIC: data is counted against the slot
   (conservation), markers vanish like everywhere else. The guard tag is
   only consumed for packets that actually make the wire — the receive
   side synthesizes tags from arrivals, so transmit-time losses must not
   advance the stamper past it. *)
let transmit t id c ~size pkt =
  if not t.ch_up.(c) then begin
    if not (Packet.is_marker pkt) then
      t.carrier_dp.(id) <- t.carrier_dp.(id) + 1
  end
  else begin
  let sc = (id * t.n_ch) + c in
  if t.use_guard then ignore (Channel_guard.Tx.next_tag t.gtx.(id) ~channel:c);
  let now = Sim.now t.sim in
  let b = t.busy.(sc) in
  let depart = if b > now then b else now in
  (* [rate_scale] models a gray facility serving below nominal; the
     packet still occupies the (slower) wire even if the loss process
     then eats it in flight. *)
  let rate = t.rate_bps.(c) *. t.rate_scale.(c) in
  let free_at = depart +. (float_of_int (size * 8) /. rate) in
  t.busy.(sc) <- free_at;
  t.wtx_p.(c) <- t.wtx_p.(c) + 1;
  t.wtx_b.(c) <- t.wtx_b.(c) + size;
  if Loss.drop t.ch_loss.(c) t.rng then begin
    t.wlost_p.(c) <- t.wlost_p.(c) + 1;
    if not (Packet.is_marker pkt) then t.wire_dp.(id) <- t.wire_dp.(id) + 1
  end
  else begin
    Fifo_queue.push t.wire.(sc) ~size pkt;
    Sim.schedule t.sim ~at:(free_at +. t.prop_delay.(c)) t.arrive.(sc)
  end
  end

(* Min-completion-time selector (Load_aware): the channel that would
   finish serving these bytes soonest, given its current wire debt
   ([busy]) and effective service rate. Suspensions are still honored —
   carrier state and quarantine verdicts flow through the engine's
   suspend set whatever the discipline. Caller guarantees at least one
   active channel. *)
let pick_least_loaded t id ~size d =
  let now = Sim.now t.sim in
  let base = id * t.n_ch in
  let best = ref (-1) and best_fin = ref infinity in
  for c = 0 to t.n_ch - 1 do
    if not (Deficit.suspended d c) then begin
      let b = t.busy.(base + c) in
      let depart = if b > now then b else now in
      let fin =
        depart
        +. (float_of_int (size * 8) /. (t.rate_bps.(c) *. t.rate_scale.(c)))
      in
      if fin < !best_fin then begin
        best_fin := fin;
        best := c
      end
    end
  done;
  !best

let push t id ~size =
  check_live t id "push";
  if size <= 0 then invalid_arg "Bundle_pool.push: size must be positive";
  if size > t.max_push then t.max_push <- size;
  if t.tx_down.(id) then
    (* The sender endpoint is crashed: the host that would stripe this
       packet does not exist. Not counted as pushed — the offered load
       never reached a striping engine. *)
    t.tx_down_dp.(id) <- t.tx_down_dp.(id) + 1
  else begin
    let d = t.tx.(id) in
    if not (Deficit.any_active d) then
      (* Every channel suspended (a storm covering the whole bundle):
         drop like [Striper.push] does, counted, never an exception. *)
      t.no_active_dp.(id) <- t.no_active_dp.(id) + 1
    else begin
      (* Select settles the round the packet belongs to (as in
         [Striper.push]); the marker check below compares against it.
         Load_aware never consults or advances the round machinery — the
         engine is only its suspend set — so its round never wraps and
         the marker branch below never fires. *)
      let c =
        match t.discipline with
        | Load_aware -> pick_least_loaded t id ~size d
        | Srr | Sprinklers _ -> Deficit.select d
      in
      let round_before = Deficit.round d in
      let pkt =
        if t.stamp_seq then begin
          let s = t.next_seq.(id) in
          t.next_seq.(id) <- s + 1;
          Packet.data ~seq:s ~size ()
        end
        else intern t size
      in
      transmit t id c ~size pkt;
      (match t.discipline with
      | Load_aware -> ()
      | Srr | Sprinklers _ -> Deficit.consume d ~size);
      t.pushed_p.(id) <- t.pushed_p.(id) + 1;
      t.pushed_b.(id) <- t.pushed_b.(id) + size;
      match t.policy with
      | Some policy when Deficit.round d > round_before ->
        (* Round_end batches: the consume wrapped into a new round, so the
           markers follow all data of the completed round — the reference
           striper's default position. Suspended channels get no markers
           (their frozen DC has nothing truthful to say; the reset barrier
           on resume resynchronizes), mirroring [Striper]. *)
        let r = Deficit.round d in
        if r >= t.next_mark.(id) then begin
          let now = Sim.now t.sim in
          for ch = 0 to t.n_ch - 1 do
            if not (Deficit.suspended d ch) then begin
              let m =
                Marker.packet_for ~epoch:t.tx_epoch.(id) ~gen:t.tx_gen.(id)
                  policy ~deficit:d
                  ~channel:ch ~now
              in
              transmit t id ch ~size:m.Packet.size m;
              t.markers <- t.markers + 1
            end
          done;
          t.next_mark.(id) <-
            ((r / policy.Marker.every_rounds) + 1) * policy.Marker.every_rounds
        end
      | Some _ | None -> ()
    end
  end

(* §5 reset barrier for one slot, mirroring [Striper.send_reset]: the
   engine reinitializes in place (suspensions survive — a reset does not
   revive a dead channel) and every channel gets a reset marker stamped
   with the slot's incarnation and its freshly bumped barrier
   generation ([m_gen] — what lets the receiver pair markers of the
   same barrier when storms interleave them). Reset markers go to ALL
   channels — the barrier is incomplete without each one — so the
   caller must not fire a barrier while carriers are still dark if it
   can help it: a dark carrier eats its copy and the receiver must wait
   out the staleness horizon for that barrier. Both carrier resumes
   ([set_channel_up]) and crash restarts ([restart_sender]) therefore
   defer the barrier to the full heal; in the interim the epoch stamp
   on ordinary periodic markers keeps a restarted sender's receiver
   re-anchoring channel by channel. *)
let send_slot_reset t id =
  (* Load_aware has no replayable engine to resynchronize and its
     receiver discards markers: a barrier would only burn wire time. *)
  if t.discipline = Load_aware then ()
  else begin
    let d = t.tx.(id) in
    Deficit.reinit d;
    t.tx_gen.(id) <- t.tx_gen.(id) + 1;
    let now = Sim.now t.sim in
    for ch = 0 to t.n_ch - 1 do
      let stamp = Deficit.next_stamp d ch in
      let m =
        Packet.marker ~reset:true ~epoch:t.tx_epoch.(id) ~gen:t.tx_gen.(id)
          ~channel:ch
          ~round:stamp.Deficit.round ~dc:stamp.Deficit.dc ~born:now ()
      in
      transmit t id ch ~size:m.Packet.size m;
      t.markers <- t.markers + 1
    done;
    t.next_mark.(id) <- 0
  end

let channel_up t c =
  if c < 0 || c >= t.n_ch then
    invalid_arg "Bundle_pool.channel_up: bad channel";
  t.ch_up.(c)

(* Channels a fully healed slot engine is expected to be striping on:
   everything except the health engine's quarantines. The §5 full-heal
   barrier fires against this count, not [n_ch] — otherwise a single
   quarantined channel would postpone every carrier-heal barrier
   forever. *)
let expected_active t =
  let q = ref 0 in
  Array.iter (fun b -> if b then incr q) t.ch_quarantined;
  t.n_ch - !q

(* The quantum vector every slot engine should be running right now:
   nominal, scaled per channel by health probation, floored at the
   largest data packet the pool has ever striped (the Thm 5.1 marker
   precondition — the slot engines declare no [max_packet], so the pool
   supplies the observed bound). Identity when no health engine is
   attached. *)
let health_target t =
  match t.health with
  | None -> t.quanta
  | Some h ->
    let floor_q = max 1 t.max_push in
    Array.mapi
      (fun c nominal ->
        let scale = Health.quantum_scale h c in
        if scale <= 0.0 || scale >= 1.0 then nominal
        else max floor_q (int_of_float (float_of_int nominal *. scale)))
      t.quanta

let set_channel_up t c up =
  if c < 0 || c >= t.n_ch then
    invalid_arg "Bundle_pool.set_channel_up: bad channel";
  if t.ch_up.(c) <> up then begin
    t.ch_up.(c) <- up;
    if t.sender_aware then
      (* One carrier transition touches channel [c] of every live bundle
         at once — the shared-risk-group semantics. Crashed senders are
         skipped: their engines are dead, and [restart_sender] re-derives
         suspensions from the link state of the moment anyway. *)
      for id = 0 to t.cap - 1 do
        if t.live.(id) && not t.tx_down.(id) then
          if up then begin
            (* A healed carrier does not override the health engine: a
               quarantined channel stays suspended until its timed
               reinstatement. *)
            if
              Deficit.suspended t.tx.(id) c && not t.ch_quarantined.(c)
            then begin
              Deficit.resume t.tx.(id) c;
              (* Fire the §5 barrier only once the slot is fully healed.
                 A barrier per partial resume would stripe its reset
                 markers into still-dark carriers, and the surviving
                 fragments of successive barriers can mispair at the
                 receiver (no generation tag on reset markers). Until
                 the last channel returns, the resumed channel's
                 ordinary markers re-pin the receiver quasi-FIFO, which
                 is the legal degraded mode during a storm. *)
              if Deficit.n_active t.tx.(id) = expected_active t then
                send_slot_reset t id
            end
          end
          else if not (Deficit.suspended t.tx.(id) c) then
            Deficit.suspend t.tx.(id) c
      done
  end

let crash_sender t id =
  check_live t id "crash_sender";
  if t.tx_down.(id) then
    invalid_arg "Bundle_pool.crash_sender: sender already down";
  t.tx_down.(id) <- true;
  t.n_crashes <- t.n_crashes + 1

let restart_sender t id =
  check_live t id "restart_sender";
  if not t.tx_down.(id) then
    invalid_arg "Bundle_pool.restart_sender: sender is not down";
  t.tx_down.(id) <- false;
  t.n_restarts <- t.n_restarts + 1;
  (* The rebooted host has no striping state (PROTOCOL.md §12): the
     engine rebuilds on the pool's current quantum vector — the health
     target, not the nominal config. A sender reborn at nominal while
     its receiver still runs an adopted probation retune would restripe
     on a different cadence than the receiver simulates, and since the
     reconciler only compares the sender half against the target, the
     mismatch would never heal: one channel of the bundle then trails
     the stripe by a constant quasi-FIFO offset forever. Suspensions
     come from the link state of the moment, the guard stamper
     restarts, and the new incarnation announces itself with
     epoch-stamped reset markers. *)
  Deficit.reconfigure t.tx.(id) ~quanta:(health_target t);
  if t.sender_aware then
    for c = 0 to t.n_ch - 1 do
      if not t.ch_up.(c) || t.ch_quarantined.(c) then
        Deficit.suspend t.tx.(id) c
    done;
  if t.use_guard then Channel_guard.Tx.reset t.gtx.(id);
  t.tx_epoch.(id) <- t.tx_epoch.(id) + 1;
  t.tx_gen.(id) <- 0;
  (* Announce the new incarnation with a reset barrier only if every
     carrier is up: a barrier fired into a storm loses the markers on
     dark channels and strands the receiver mid-assembly (see
     [send_slot_reset]). When some carriers are down, the epoch bump
     alone is enough in the interim — every periodic marker carries it,
     so the receiver's eager crash-sync re-anchors channel by channel —
     and the full heal fires the proper barrier via [set_channel_up]
     (the engine just rebuilt with those channels suspended). *)
  if Deficit.n_active t.tx.(id) = expected_active t then send_slot_reset t id

let crash_receiver t id =
  check_live t id "crash_receiver";
  if t.rx_down.(id) then
    invalid_arg "Bundle_pool.crash_receiver: receiver already down";
  t.rx_down.(id) <- true;
  t.n_crashes <- t.n_crashes + 1;
  (* Everything buffered dies with the endpoint now; the resequencer is
     also reset here rather than at restart, because its post-crash
     cold state is exactly what the restarted process boots with.
     Arrivals in between are dropped by [rx_ingest]. *)
  let wiped = Resequencer.crash_restart t.rx.(id) in
  t.rx_wiped_p.(id) <- t.rx_wiped_p.(id) + wiped;
  wiped

let restart_receiver t id =
  check_live t id "restart_receiver";
  if not t.rx_down.(id) then
    invalid_arg "Bundle_pool.restart_receiver: receiver is not down";
  t.rx_down.(id) <- false;
  t.n_restarts <- t.n_restarts + 1

let set_channel_loss t c loss =
  if c < 0 || c >= t.n_ch then
    invalid_arg "Bundle_pool.set_channel_loss: bad channel";
  t.ch_loss.(c) <- loss

let scale_channel_rate t c f =
  if c < 0 || c >= t.n_ch then
    invalid_arg "Bundle_pool.scale_channel_rate: bad channel";
  if not (f > 0.0) then
    invalid_arg "Bundle_pool.scale_channel_rate: factor must be positive";
  t.rate_scale.(c) <- f

(* --- Fleet-wide gray-failure self-healing (PROTOCOL.md §13) --------- *)

let health t = t.health

let channel_quarantined t c =
  if c < 0 || c >= t.n_ch then
    invalid_arg "Bundle_pool.channel_quarantined: bad channel";
  t.ch_quarantined.(c)

(* One verdict, every bundle: policy-suspend channel [c] of each live
   slot engine. Suspends need no barrier; the reinstatement's retune
   below carries the §5 resynchronization. *)
let quarantine_channel t c =
  t.ch_quarantined.(c) <- true;
  for id = 0 to t.cap - 1 do
    if t.live.(id) && not t.tx_down.(id) then
      if not (Deficit.suspended t.tx.(id) c) then Deficit.suspend t.tx.(id) c
  done

let unquarantine_channel t c =
  t.ch_quarantined.(c) <- false;
  (* Resume only where the carrier cooperates — a channel that also went
     physically dark during its quarantine stays suspended until
     [set_channel_up] heals it. No barrier here: the probation retune
     that always follows a reinstatement fires [send_slot_reset] per
     slot, which doubles as the §5 resync for the resumed channel. *)
  if t.ch_up.(c) then
    for id = 0 to t.cap - 1 do
      if t.live.(id) && not t.tx_down.(id) then
        if Deficit.suspended t.tx.(id) c then Deficit.resume t.tx.(id) c
    done

(* Operator-initiated pool-wide §5 resynchronization. A resequencer can
   carry a bounded stale surplus indefinitely: when the cadence watchdog
   skips packets that were merely delayed (a rate collapse), not lost,
   the late copies still arrive and sit in the channel buffer — and
   since data packets carry no round identity, periodic markers re-pin
   the cadence but can never expunge the surplus, so every later
   delivery on that channel trails the stripe by a constant offset
   (legal quasi-FIFO, but never self-healing). The reset barrier is the
   protocol's cure: the pre-barrier surplus drains during assembly and
   the adopted engine restarts clean. Slots with a crashed endpoint are
   skipped — their own crash barrier resynchronizes on restart. *)
let resync t =
  for id = 0 to t.cap - 1 do
    if t.live.(id) && (not t.tx_down.(id)) && not t.rx_down.(id) then
      send_slot_reset t id
  done

(* Reconcile every slot's quantum vector with the health target. The
   sender half stages via [Deficit.retune] and adopts in
   [send_slot_reset]'s reinit; the receiver half stages via
   [Resequencer.retune] and adopts when that same barrier completes.
   BOTH halves are compared against the target: they can disagree with
   each other even when the sender matches — a sender crash-restart
   rebuilds its engine from the target of that moment while its
   receiver still runs an earlier adopted retune — and an unrepaired
   split-cadence slot trails the stripe by a constant quasi-FIFO offset
   forever. A slot mid-transition (or with a crashed endpoint) is
   skipped and counted; the target is recomputed next tick, so deferral
   self-heals. *)
let flush_health_quanta t =
  (* Quanta do not govern a Load_aware pool — selection is pure wire
     debt, and a probation's "smaller quantum" has no cadence to shrink.
     (The quarantine/suspend half of the health verdict still applies
     through the engines' suspend sets.) Retuning here would also stage
     receiver transitions whose adopting barrier never arrives. *)
  if t.discipline = Load_aware then ()
  else begin
  let target = health_target t in
  for id = 0 to t.cap - 1 do
    if
      t.live.(id)
      && (not t.tx_down.(id))
      && not t.rx_down.(id)
    then
      if
        Deficit.quanta t.tx.(id) <> target
        || Resequencer.quanta t.rx.(id) <> target
      then
        if Resequencer.transition_pending t.rx.(id) then
          t.health_deferred <- t.health_deferred + 1
        else begin
          t.health_retunes <- t.health_retunes + 1;
          Deficit.retune t.tx.(id) ~quanta:target;
          Resequencer.retune t.rx.(id) ~quanta:target;
          send_slot_reset t id
        end
  done
  end

let health_tick t ~now =
  match t.health with
  | None -> []
  | Some h ->
    (* Evidence: this tick's pool-wide wire deltas per channel. Loss and
       goodput shortfall both come from the facility itself — one gray
       link is one detection, however many bundles ride it. *)
    for c = 0 to t.n_ch - 1 do
      let sent = t.wtx_p.(c) - t.last_wtx_p.(c) in
      let lost = t.wlost_p.(c) - t.last_wlost_p.(c) in
      let txb = t.wtx_b.(c) - t.last_wtx_b.(c) in
      let doneb = t.wdone_b.(c) - t.last_wdone_b.(c) in
      t.last_wtx_p.(c) <- t.wtx_p.(c);
      t.last_wlost_p.(c) <- t.wlost_p.(c);
      t.last_wtx_b.(c) <- t.wtx_b.(c);
      t.last_wdone_b.(c) <- t.wdone_b.(c);
      if sent > 0 then
        let goodput_ratio =
          min 1.0 (float_of_int doneb /. float_of_int (max txb 1))
        in
        Health.observe h ~channel:c ~sent ~lost ~goodput_ratio ()
    done;
    let transitions = Health.sample h ~now in
    List.iter
      (fun tr ->
        match tr with
        | Health.To_quarantine { channel; _ } -> quarantine_channel t channel
        | Health.To_probation { channel; from_quarantine = true } ->
          unquarantine_channel t channel
        | Health.To_probation _ | Health.To_suspect _ | Health.To_healthy _
          ->
          ())
      transitions;
    flush_health_quanta t;
    transitions

let health_retunes t = t.health_retunes
let health_deferred_retunes t = t.health_deferred

let channel_wire_tx t c =
  if c < 0 || c >= t.n_ch then
    invalid_arg "Bundle_pool.channel_wire_tx: bad channel";
  t.wtx_p.(c)

let channel_wire_lost t c =
  if c < 0 || c >= t.n_ch then
    invalid_arg "Bundle_pool.channel_wire_lost: bad channel";
  t.wlost_p.(c)

let set_fifo_check_after t time = t.fifo_check_after <- time

let inject_violation t id =
  check_live t id "inject_violation";
  (* Test-only: poison the FIFO monitor's high-water so the very next
     delivery on this slot registers as an ordering violation —
     validates that the always-on monitors actually fire. *)
  t.last_seq.(id) <- max_int

let birth_time t id =
  check_slot t id "birth_time";
  t.birth.(id)

let pushed_packets t id =
  check_slot t id "pushed_packets";
  t.pushed_p.(id)

let pushed_bytes t id =
  check_slot t id "pushed_bytes";
  t.pushed_b.(id)

let delivered_packets t id =
  check_slot t id "delivered_packets";
  t.delivered_p.(id)

let delivered_bytes t id =
  check_slot t id "delivered_bytes";
  t.delivered_b.(id)

let in_flight_packets t id =
  check_slot t id "in_flight_packets";
  let base = id * t.n_ch in
  let total = ref 0 in
  for c = 0 to t.n_ch - 1 do
    let sc = base + c in
    total := !total + Fifo_queue.length t.wire.(sc) - t.drop.(sc)
  done;
  !total

let rx_high_water_packets t id =
  check_slot t id "rx_high_water_packets";
  Resequencer.buffer_high_water_packets t.rx.(id)

let sender_down t id =
  check_slot t id "sender_down";
  t.tx_down.(id)

let receiver_down t id =
  check_slot t id "receiver_down";
  t.rx_down.(id)

let sender_epoch t id =
  check_slot t id "sender_epoch";
  t.tx_epoch.(id)

let carrier_drops t id =
  check_slot t id "carrier_drops";
  t.carrier_dp.(id)

let sender_down_drops t id =
  check_slot t id "sender_down_drops";
  t.tx_down_dp.(id)

let no_channel_drops t id =
  check_slot t id "no_channel_drops";
  t.no_active_dp.(id)

let receiver_down_drops t id =
  check_slot t id "receiver_down_drops";
  t.rx_down_dp.(id)

let rx_wiped_packets t id =
  check_slot t id "rx_wiped_packets";
  t.rx_wiped_p.(id)

let wire_loss_drops t id =
  check_slot t id "wire_loss_drops";
  t.wire_dp.(id)

let wire_busy_until t = Array.fold_left Float.max 0.0 t.busy

let rx_epoch_discards t id =
  check_slot t id "rx_epoch_discards";
  Resequencer.epoch_discards t.rx.(id)

let rx_crash_syncs t id =
  check_slot t id "rx_crash_syncs";
  Resequencer.crash_syncs t.rx.(id)

let rx_resets t id =
  check_slot t id "rx_resets";
  Resequencer.resets t.rx.(id)

let rx_forced_barriers t id =
  check_slot t id "rx_forced_barriers";
  Resequencer.forced_barriers t.rx.(id)

let rx_pending_packets t id =
  check_slot t id "rx_pending_packets";
  Resequencer.pending t.rx.(id)

let rx_channel_dead t id c =
  check_slot t id "rx_channel_dead";
  Resequencer.channel_dead t.rx.(id) c

let rx_watchdog_skips t id =
  check_slot t id "rx_watchdog_skips";
  Resequencer.watchdog_skips t.rx.(id)

let rx_dead_declarations t id =
  check_slot t id "rx_dead_declarations";
  Resequencer.dead_declarations t.rx.(id)

let last_delivery_time t id =
  check_slot t id "last_delivery_time";
  t.last_delivery.(id)

let fifo_violations t id =
  check_slot t id "fifo_violations";
  t.fifo_viol.(id)

let seq_inversions t id =
  check_slot t id "seq_inversions";
  t.ooo.(id)

let total_delivered_packets t = t.total_dp
let total_delivered_bytes t = t.total_db
let markers_sent t = t.markers
let total_fifo_violations t = t.fifo_violations
let first_violation t = t.first_violation
let crashes t = t.n_crashes
let restarts t = t.n_restarts
