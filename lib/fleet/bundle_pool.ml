(* Flyweight bundle fleet: thousands of striped bundles on one event
   loop, with all heavyweight per-bundle state pooled and recycled.

   Layout. Per-slot state is struct-of-arrays indexed by the bundle id;
   per-slot-channel state is flattened as [id * n_channels + c]. The
   components that are expensive to build — deficit engines,
   resequencers, guards, wire FIFOs, and the closures handed to the
   simulator and the resequencer — are created once when a slot is
   first built ([grow]) and thereafter recycled in place, never
   reallocated. Closures capture the pool record and their slot index
   and read the arrays at fire time, so growing the table (which
   replaces the arrays) never strands them.

   Wire and stale-event discipline. Each slot-channel wire is a
   rate+delay pipe: [busy_until] serializes departures, so arrival
   times are strictly increasing per slot-channel and the k-th arrival
   event to fire pops exactly the k-th packet pushed — the arrival
   closure needs no per-event payload. A [release] cannot cancel the
   arrival events already in the simulator, and deliberately does not
   reset [busy_until] or clear the wire: the link keeps draining its
   timeline. Instead [drop] records how many packets at the head of the
   wire belong to dead generations; the arrival closure discards
   exactly those (in FIFO order, at their true arrival times) before
   feeding the new owner's resequencer. Setting [drop] to the wire's
   current length at release is idempotent across rapid re-releases:
   whatever is on the wire at that instant is, by definition, dead. *)

open Stripe_packet
open Stripe_netsim
open Stripe_core

type config = {
  rate_bps : float array;
  prop_delay : float array;
  quanta : int array;
  marker_every : int;
  guard : bool;
}

type t = {
  sim : Sim.t;
  n_ch : int;
  rate_bps : float array;
  prop_delay : float array;
  quanta : int array;
  marker_every : int;
  use_guard : bool;
  policy : Marker.policy option;
  now_fn : unit -> float;  (* shared by every slot's resequencer *)
  (* Data packets are immutable and the protocol never reads their
     measurement metadata, so one packet per distinct size serves every
     bundle in the fleet. *)
  interned : (int, Packet.t) Hashtbl.t;
  mutable cap : int;
  (* Per-slot (length = cap). *)
  mutable live : bool array;
  mutable tx : Deficit.t array;
  mutable rx : Resequencer.t array;
  mutable gtx : Channel_guard.Tx.t array;  (* empty unless [use_guard] *)
  mutable grx : Channel_guard.t array;  (* empty unless [use_guard] *)
  mutable next_mark : int array;  (* first round >= this gets markers *)
  mutable birth : float array;
  mutable pushed_p : int array;
  mutable pushed_b : int array;
  mutable delivered_p : int array;
  mutable delivered_b : int array;
  (* Per-slot-channel (length = cap * n_ch). *)
  mutable wire : Packet.t Fifo_queue.t array;
  mutable busy : float array;  (* channel transmitting until this time *)
  mutable drop : int array;  (* head-of-wire packets of dead generations *)
  mutable rx_tag : int array;  (* guard tag the next arrival carries *)
  mutable arrive : (unit -> unit) array;  (* prebuilt, one per slot-channel *)
  (* Free-slot stack. *)
  mutable free : int array;
  mutable n_free : int;
  mutable n_live : int;
  mutable n_acquired : int;
  mutable n_recycled : int;
  mutable total_dp : int;
  mutable total_db : int;
  mutable markers : int;
}

let n_channels t = t.n_ch

let config t =
  {
    rate_bps = Array.copy t.rate_bps;
    prop_delay = Array.copy t.prop_delay;
    quanta = Array.copy t.quanta;
    marker_every = t.marker_every;
    guard = t.use_guard;
  }

let check_live t id what =
  if id < 0 || id >= t.cap || not t.live.(id) then
    invalid_arg (Printf.sprintf "Bundle_pool.%s: bundle %d is not live" what id)

let check_slot t id what =
  if id < 0 || id >= t.cap then
    invalid_arg (Printf.sprintf "Bundle_pool.%s: bad bundle id %d" what id)

(* Feed one surviving arrival to the slot's receive side. With the
   guard on, the tag is reproduced from a per-slot-channel counter: the
   wire is a perfect FIFO, so arrivals carry consecutive tags and the
   counter tracks the sender's stamper exactly (both restart at zero on
   recycle, and dead-generation discards happen before tagging). *)
let feed t id c pkt =
  if t.use_guard then begin
    let sc = (id * t.n_ch) + c in
    let tag = t.rx_tag.(sc) in
    t.rx_tag.(sc) <- tag + 1;
    Channel_guard.receive t.grx.(id) ~channel:c ~tag pkt
  end
  else Resequencer.receive t.rx.(id) ~channel:c pkt

let make_arrive t id c =
  let sc = (id * t.n_ch) + c in
  fun () ->
    let pkt = Fifo_queue.pop_exn t.wire.(sc) in
    if t.drop.(sc) > 0 then t.drop.(sc) <- t.drop.(sc) - 1
    else feed t id c pkt

let make_deliver t id =
  fun ~channel:_ (pkt : Packet.t) ->
    t.delivered_p.(id) <- t.delivered_p.(id) + 1;
    t.delivered_b.(id) <- t.delivered_b.(id) + pkt.Packet.size;
    t.total_dp <- t.total_dp + 1;
    t.total_db <- t.total_db + pkt.Packet.size

(* Build slots [t.cap, cap): every expensive component a bundle will
   ever need on this slot is created here, exactly once. *)
let grow_to t cap =
  let old = t.cap in
  let extend make a = Array.init cap (fun i -> if i < old then a.(i) else make i) in
  t.live <- extend (fun _ -> false) t.live;
  t.tx <-
    extend (fun _ -> Deficit.create ~quanta:(Array.copy t.quanta) ()) t.tx;
  t.rx <-
    extend
      (fun i ->
        Resequencer.create
          ~deficit:(Deficit.clone_initial t.tx.(i))
          ~now:t.now_fn
          ~deliver:(make_deliver t i)
          ())
      t.rx;
  if t.use_guard then begin
    t.gtx <- extend (fun _ -> Channel_guard.Tx.create ~n:t.n_ch) t.gtx;
    t.grx <-
      extend
        (fun i ->
          Channel_guard.create ~n:t.n_ch ~now:t.now_fn
            ~deliver:(fun ~channel pkt ->
              Resequencer.receive t.rx.(i) ~channel pkt)
            ())
        t.grx
  end;
  t.next_mark <- extend (fun _ -> 0) t.next_mark;
  t.birth <- extend (fun _ -> 0.0) t.birth;
  t.pushed_p <- extend (fun _ -> 0) t.pushed_p;
  t.pushed_b <- extend (fun _ -> 0) t.pushed_b;
  t.delivered_p <- extend (fun _ -> 0) t.delivered_p;
  t.delivered_b <- extend (fun _ -> 0) t.delivered_b;
  let scap = cap * t.n_ch in
  let sold = old * t.n_ch in
  let extend_sc make a =
    Array.init scap (fun i -> if i < sold then a.(i) else make i)
  in
  t.wire <- extend_sc (fun _ -> Fifo_queue.create ()) t.wire;
  t.busy <- extend_sc (fun _ -> 0.0) t.busy;
  t.drop <- extend_sc (fun _ -> 0) t.drop;
  t.rx_tag <- extend_sc (fun _ -> 0) t.rx_tag;
  t.arrive <-
    extend_sc (fun sc -> make_arrive t (sc / t.n_ch) (sc mod t.n_ch)) t.arrive;
  t.free <- extend (fun _ -> 0) t.free;
  (* Stack the new slots so the lowest id comes off first. *)
  for id = cap - 1 downto old do
    t.free.(t.n_free) <- id;
    t.n_free <- t.n_free + 1
  done;
  t.cap <- cap

let create ?(initial_capacity = 64) ~sim (config : config) =
  let n = Array.length config.rate_bps in
  if n = 0 then invalid_arg "Bundle_pool.create: no channels";
  if Array.length config.prop_delay <> n || Array.length config.quanta <> n
  then invalid_arg "Bundle_pool.create: config arrays differ in length";
  if Array.exists (fun r -> not (r > 0.0)) config.rate_bps then
    invalid_arg "Bundle_pool.create: rates must be positive";
  if Array.exists (fun d -> not (d >= 0.0)) config.prop_delay then
    invalid_arg "Bundle_pool.create: delays must be non-negative";
  if Array.exists (fun q -> q <= 0) config.quanta then
    invalid_arg "Bundle_pool.create: quanta must be positive";
  if config.marker_every < 0 then
    invalid_arg "Bundle_pool.create: marker_every must be >= 0";
  if initial_capacity <= 0 then
    invalid_arg "Bundle_pool.create: initial_capacity must be positive";
  let t =
    {
      sim;
      n_ch = n;
      rate_bps = Array.copy config.rate_bps;
      prop_delay = Array.copy config.prop_delay;
      quanta = Array.copy config.quanta;
      marker_every = config.marker_every;
      use_guard = config.guard;
      policy =
        (if config.marker_every > 0 then
           Some (Marker.make ~every_rounds:config.marker_every ())
         else None);
      now_fn = (fun () -> Sim.now sim);
      interned = Hashtbl.create 64;
      cap = 0;
      live = [||];
      tx = [||];
      rx = [||];
      gtx = [||];
      grx = [||];
      next_mark = [||];
      birth = [||];
      pushed_p = [||];
      pushed_b = [||];
      delivered_p = [||];
      delivered_b = [||];
      wire = [||];
      busy = [||];
      drop = [||];
      rx_tag = [||];
      arrive = [||];
      free = [||];
      n_free = 0;
      n_live = 0;
      n_acquired = 0;
      n_recycled = 0;
      total_dp = 0;
      total_db = 0;
      markers = 0;
    }
  in
  grow_to t initial_capacity;
  t

let acquire t =
  if t.n_free = 0 then grow_to t (2 * t.cap);
  t.n_free <- t.n_free - 1;
  let id = t.free.(t.n_free) in
  t.live.(id) <- true;
  t.birth.(id) <- Sim.now t.sim;
  t.pushed_p.(id) <- 0;
  t.pushed_b.(id) <- 0;
  t.delivered_p.(id) <- 0;
  t.delivered_b.(id) <- 0;
  t.n_live <- t.n_live + 1;
  t.n_acquired <- t.n_acquired + 1;
  id

let release t id =
  check_live t id "release";
  let base = id * t.n_ch in
  for c = 0 to t.n_ch - 1 do
    let sc = base + c in
    (* Everything on the wire right now — including any still-undropped
       tail of an even earlier generation — is dead. [busy] is kept:
       the link finishes transmitting what it already accepted. *)
    t.drop.(sc) <- Fifo_queue.length t.wire.(sc);
    t.rx_tag.(sc) <- 0
  done;
  Resequencer.recycle t.rx.(id);
  Deficit.reconfigure t.tx.(id) ~quanta:t.quanta;
  if t.use_guard then begin
    Channel_guard.recycle t.grx.(id);
    Channel_guard.Tx.reset t.gtx.(id)
  end;
  t.next_mark.(id) <- 0;
  t.live.(id) <- false;
  t.n_live <- t.n_live - 1;
  t.n_recycled <- t.n_recycled + 1;
  t.free.(t.n_free) <- id;
  t.n_free <- t.n_free + 1

let is_live t id = id >= 0 && id < t.cap && t.live.(id)
let live_bundles t = t.n_live
let capacity t = t.cap
let total_acquired t = t.n_acquired
let recycles t = t.n_recycled

let intern t size =
  try Hashtbl.find t.interned size
  with Not_found ->
    let pkt = Packet.data ~seq:0 ~size () in
    Hashtbl.add t.interned size pkt;
    pkt

(* Put one packet (data or marker) on a slot-channel wire. *)
let transmit t id c ~size pkt =
  let sc = (id * t.n_ch) + c in
  if t.use_guard then ignore (Channel_guard.Tx.next_tag t.gtx.(id) ~channel:c);
  let now = Sim.now t.sim in
  let b = t.busy.(sc) in
  let depart = if b > now then b else now in
  let free_at = depart +. (float_of_int (size * 8) /. t.rate_bps.(c)) in
  t.busy.(sc) <- free_at;
  Fifo_queue.push t.wire.(sc) ~size pkt;
  Sim.schedule t.sim ~at:(free_at +. t.prop_delay.(c)) t.arrive.(sc)

let push t id ~size =
  check_live t id "push";
  if size <= 0 then invalid_arg "Bundle_pool.push: size must be positive";
  let d = t.tx.(id) in
  (* Select settles the round the packet belongs to (as in
     [Striper.push]); the marker check below compares against it. *)
  let c = Deficit.select d in
  let round_before = Deficit.round d in
  transmit t id c ~size (intern t size);
  Deficit.consume d ~size;
  t.pushed_p.(id) <- t.pushed_p.(id) + 1;
  t.pushed_b.(id) <- t.pushed_b.(id) + size;
  match t.policy with
  | Some policy when Deficit.round d > round_before ->
    (* Round_end batches: the consume wrapped into a new round, so the
       markers follow all data of the completed round — the reference
       striper's default position. *)
    let r = Deficit.round d in
    if r >= t.next_mark.(id) then begin
      let now = Sim.now t.sim in
      for ch = 0 to t.n_ch - 1 do
        let m = Marker.packet_for policy ~deficit:d ~channel:ch ~now in
        transmit t id ch ~size:m.Packet.size m;
        t.markers <- t.markers + 1
      done;
      t.next_mark.(id) <-
        ((r / policy.Marker.every_rounds) + 1) * policy.Marker.every_rounds
    end
  | Some _ | None -> ()

let birth_time t id =
  check_slot t id "birth_time";
  t.birth.(id)

let pushed_packets t id =
  check_slot t id "pushed_packets";
  t.pushed_p.(id)

let pushed_bytes t id =
  check_slot t id "pushed_bytes";
  t.pushed_b.(id)

let delivered_packets t id =
  check_slot t id "delivered_packets";
  t.delivered_p.(id)

let delivered_bytes t id =
  check_slot t id "delivered_bytes";
  t.delivered_b.(id)

let in_flight_packets t id =
  check_slot t id "in_flight_packets";
  let base = id * t.n_ch in
  let total = ref 0 in
  for c = 0 to t.n_ch - 1 do
    let sc = base + c in
    total := !total + Fifo_queue.length t.wire.(sc) - t.drop.(sc)
  done;
  !total

let rx_high_water_packets t id =
  check_slot t id "rx_high_water_packets";
  Resequencer.buffer_high_water_packets t.rx.(id)

let total_delivered_packets t = t.total_dp
let total_delivered_bytes t = t.total_db
let markers_sent t = t.markers
