(* Sharded bundle-pool fleet: record once, replay in parallel domains.

   The churn workloads that drive a Bundle_pool are protocol-independent
   — which bundle starts when, how long it lives, which live bundle each
   offered packet lands on are all drawn from workload RNG streams that
   never read protocol state. That makes the fleet shardable by
   *recording* the workload as a timestamped op tape (acquire / release
   / push over pool slot ids) and *replaying* disjoint slices of the
   tape in parallel, one OCaml 5 domain per shard, each with its own
   [Netsim.Sim] loop, its own [Rng] stream ([Rng.stream] indexed by
   shard), and its own [Bundle_pool] — no shared mutable protocol state,
   communication only at the final merge barrier.

   The partition is by pool slot id, not by acquisition order: slots are
   the unit of state reuse (a recycled slot bequeaths its successor the
   busy-wire tail the link is still serializing), so giving a shard
   whole slots gives it whole recycling chains. The recorder shadows
   Bundle_pool's allocator exactly (LIFO free stack, doubling growth) to
   learn which slot each acquire would land on; the replay then drives
   that assignment verbatim through [Bundle_pool.acquire_slot]. Because
   slots never interact — wires, resequencers and schedulers are all
   per-slot — each slot's event sequence is identical whatever other
   slots share its sim, and therefore identical for every shard count:
   [--domains 1] reproduces the legacy single-pool run byte-for-byte,
   and [--domains N] merges back to the same protocol aggregates.

   What merges at the barrier: per-generation delivery records (ordered
   by global acquisition ordinal), pool counter totals (sums), marker
   counts (sums), FIFO-monitor verdicts (sum violations, min-time first
   violation), and wall-clock (max + scaling efficiency). Cross-bundle
   delivery ordering is *not* preserved across shards — bundles are
   independent FIFO streams, so no protocol invariant spans them. *)

module Sim = Stripe_netsim.Sim
module Rng = Stripe_netsim.Rng

let op_acquire = 0
let op_release = 1
let op_push = 2

type tape = {
  mutable kind : Bytes.t;
  mutable at : float array;
  mutable slot : int array;
  mutable arg : int array;
      (* push size; for acquire ops the global acquisition ordinal *)
  mutable len : int;
}

let tape_create () =
  {
    kind = Bytes.create 1024;
    at = Array.make 1024 0.0;
    slot = Array.make 1024 0;
    arg = Array.make 1024 0;
    len = 0;
  }

let tape_push tp ~op ~at ~slot ~arg =
  if tp.len = Bytes.length tp.kind then begin
    let n = tp.len in
    let kind = Bytes.create (2 * n) in
    Bytes.blit tp.kind 0 kind 0 n;
    tp.kind <- kind;
    let grow a zero =
      let b = Array.make (2 * n) zero in
      Array.blit a 0 b 0 n;
      b
    in
    tp.at <- grow tp.at 0.0;
    tp.slot <- grow tp.slot 0;
    tp.arg <- grow tp.arg 0
  end;
  Bytes.set_uint8 tp.kind tp.len op;
  tp.at.(tp.len) <- at;
  tp.slot.(tp.len) <- slot;
  tp.arg.(tp.len) <- arg;
  tp.len <- tp.len + 1

type t = {
  domains : int;
  engine : Sim.engine;
  stamp_seq : bool;
  seed : int;
  config : Bundle_pool.config;
  clock : unit -> float;
  tapes : tape array;
  (* Shadow of Bundle_pool's slot allocator: LIFO free stack, doubling
     growth, new slots stacked lowest-id-first — bit-for-bit the
     assignment the legacy single pool would make. *)
  mutable cap : int;
  mutable free : int array;
  mutable n_free : int;
  mutable live : bool array;
  mutable n_live : int;
  mutable peak_live : int;
  mutable n_acquired : int;
  mutable last_at : float;
}

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let shard_of_bundle ~domains id =
  if domains <= 1 then 0
  else
    (* Mix the slot id before reducing: slot ids are dense small ints,
       and a bare modulus would correlate the partition with allocation
       order. The mixed form is still a pure function of (id, domains),
       so a given seed always produces the same partition. *)
    let z = mix64 (Int64.mul (Int64.of_int (id + 1)) 0x9E3779B97F4A7C15L) in
    Int64.to_int (Int64.logand z 0x3FFFFFFFFFFFFFFFL) mod domains

let auto_domains () = max 1 (Domain.recommended_domain_count ())
let resolve_domains n = if n <= 0 then auto_domains () else n

let split_fleet ~domains ~bundles =
  let counts = Array.make domains 0 in
  for b = 0 to bundles - 1 do
    let s = shard_of_bundle ~domains b in
    counts.(s) <- counts.(s) + 1
  done;
  let parts = Array.map (fun n -> Array.make n 0) counts in
  let fill = Array.make domains 0 in
  for b = 0 to bundles - 1 do
    let s = shard_of_bundle ~domains b in
    parts.(s).(fill.(s)) <- b;
    fill.(s) <- fill.(s) + 1
  done;
  parts

let grow_shadow t cap =
  let extend zero a =
    let b = Array.make cap zero in
    Array.blit a 0 b 0 t.cap;
    b
  in
  t.free <- extend 0 t.free;
  t.live <- extend false t.live;
  (* Stack the new slots so the lowest id comes off first — mirrors
     Bundle_pool.grow_to. *)
  for id = cap - 1 downto t.cap do
    t.free.(t.n_free) <- id;
    t.n_free <- t.n_free + 1
  done;
  t.cap <- cap

let create ?(engine = Sim.Heap) ?(stamp_seq = false) ?(initial_capacity = 64)
    ?(clock = fun () -> 0.0) ~domains ~seed config =
  let domains = resolve_domains domains in
  if initial_capacity <= 0 then
    invalid_arg "Sharded_pool.create: initial_capacity must be positive";
  let t =
    {
      domains;
      engine;
      stamp_seq;
      seed;
      config;
      clock;
      tapes = Array.init domains (fun _ -> tape_create ());
      cap = 0;
      free = [||];
      live = [||];
      n_free = 0;
      n_live = 0;
      peak_live = 0;
      n_acquired = 0;
      last_at = neg_infinity;
    }
  in
  grow_shadow t initial_capacity;
  t

let domains t = t.domains
let total_acquired t = t.n_acquired
let live_bundles t = t.n_live
let peak_live t = t.peak_live

let check_at t at op =
  if at < t.last_at then
    invalid_arg (Printf.sprintf "Sharded_pool.%s: time runs backwards" op);
  t.last_at <- at

let acquire t ~at =
  check_at t at "acquire";
  if t.n_free = 0 then grow_shadow t (2 * t.cap);
  t.n_free <- t.n_free - 1;
  let id = t.free.(t.n_free) in
  t.live.(id) <- true;
  t.n_live <- t.n_live + 1;
  if t.n_live > t.peak_live then t.peak_live <- t.n_live;
  let ordinal = t.n_acquired in
  t.n_acquired <- t.n_acquired + 1;
  let shard = shard_of_bundle ~domains:t.domains id in
  tape_push t.tapes.(shard) ~op:op_acquire ~at ~slot:id ~arg:ordinal;
  id

let check_live t id op =
  if id < 0 || id >= t.cap || not t.live.(id) then
    invalid_arg (Printf.sprintf "Sharded_pool.%s: bundle %d is not live" op id)

let release t ~at id =
  check_at t at "release";
  check_live t id "release";
  t.live.(id) <- false;
  t.n_live <- t.n_live - 1;
  t.free.(t.n_free) <- id;
  t.n_free <- t.n_free + 1;
  let shard = shard_of_bundle ~domains:t.domains id in
  tape_push t.tapes.(shard) ~op:op_release ~at ~slot:id ~arg:0

let push t ~at id ~size =
  check_at t at "push";
  check_live t id "push";
  let shard = shard_of_bundle ~domains:t.domains id in
  tape_push t.tapes.(shard) ~op:op_push ~at ~slot:id ~arg:size

(* --- replay ----------------------------------------------------------- *)

type gen_report = {
  ordinal : int;
  slot : int;
  shard : int;
  birth : float;
  death : float;
  pushed_packets : int;
  pushed_bytes : int;
  delivered_packets : int;
  delivered_bytes : int;
}

type shard_report = {
  shard : int;
  slots : int;
  ops : int;
  generations : int;
  delivered_packets : int;
  delivered_bytes : int;
  markers_sent : int;
  fifo_violations : int;
  first_violation : (float * int * int) option;
  wall_s : float;
  end_time : float;
}

type report = {
  domains : int;
  shards : shard_report array;
  gens : gen_report array;
  acquired : int;
  peak_live : int;
  delivered_packets : int;
  delivered_bytes : int;
  markers_sent : int;
  fifo_violations : int;
  first_violation : (float * int * int) option;
  wall_s : float;
  end_time : float;
  efficiency : float;
}

let replay t ~shard =
  let tp = t.tapes.(shard) in
  let wall0 = t.clock () in
  (* Dense local ids for the global slots this shard owns; a slot's
     first op is necessarily its first acquire. *)
  let local_of_global = Array.make (max 1 t.cap) (-1) in
  let n_slots = ref 0 in
  for i = 0 to tp.len - 1 do
    if Bytes.get_uint8 tp.kind i = op_acquire then begin
      let g = tp.slot.(i) in
      if local_of_global.(g) < 0 then begin
        local_of_global.(g) <- !n_slots;
        incr n_slots
      end
    end
  done;
  let global_of_local = Array.make (max 1 !n_slots) (-1) in
  Array.iteri
    (fun g l -> if l >= 0 then global_of_local.(l) <- g)
    local_of_global;
  let sim = Sim.create ~engine:t.engine () in
  let rng = Rng.stream ~seed:t.seed shard in
  let pool =
    Bundle_pool.create ~initial_capacity:(max 1 !n_slots)
      ~stamp_seq:t.stamp_seq ~rng ~sim t.config
  in
  let cur_ord = Array.make (max 1 !n_slots) (-1) in
  let gens = ref [] in
  let n_gens = ref 0 in
  let i = ref 0 in
  let rec pump () =
    if !i < tp.len then begin
      let k = !i in
      Sim.schedule sim ~at:tp.at.(k) (fun () ->
          let g = tp.slot.(k) in
          let l = local_of_global.(g) in
          (match Bytes.get_uint8 tp.kind k with
          | 0 ->
            ignore (Bundle_pool.acquire_slot pool l);
            cur_ord.(l) <- tp.arg.(k)
          | 1 ->
            gens :=
              {
                ordinal = cur_ord.(l);
                slot = g;
                shard;
                birth = Bundle_pool.birth_time pool l;
                death = Sim.now sim;
                pushed_packets = Bundle_pool.pushed_packets pool l;
                pushed_bytes = Bundle_pool.pushed_bytes pool l;
                delivered_packets = Bundle_pool.delivered_packets pool l;
                delivered_bytes = Bundle_pool.delivered_bytes pool l;
              }
              :: !gens;
            incr n_gens;
            Bundle_pool.release pool l
          | _ -> Bundle_pool.push pool l ~size:tp.arg.(k));
          incr i;
          pump ())
    end
  in
  pump ();
  Sim.run sim;
  let first_violation =
    match Bundle_pool.first_violation pool with
    | None -> None
    | Some (time, l, seq) -> Some (time, global_of_local.(l), seq)
  in
  ( {
      shard;
      slots = !n_slots;
      ops = tp.len;
      generations = !n_gens;
      delivered_packets = Bundle_pool.total_delivered_packets pool;
      delivered_bytes = Bundle_pool.total_delivered_bytes pool;
      markers_sent = Bundle_pool.markers_sent pool;
      fifo_violations = Bundle_pool.total_fifo_violations pool;
      first_violation;
      wall_s = t.clock () -. wall0;
      end_time = Sim.now sim;
    },
    !gens )

let earlier a b =
  match (a, b) with
  | None, v | v, None -> v
  | Some (ta, _, _), Some (tb, _, _) -> if tb < ta then b else a

let run t =
  let wall0 = t.clock () in
  let results =
    if t.domains = 1 then [| replay t ~shard:0 |]
    else begin
      let workers =
        Array.init (t.domains - 1) (fun k ->
            Domain.spawn (fun () -> replay t ~shard:(k + 1)))
      in
      let own = replay t ~shard:0 in
      Array.append [| own |] (Array.map Domain.join workers)
    end
  in
  let wall_s = t.clock () -. wall0 in
  let shards = Array.map fst results in
  let gens =
    Array.of_list (List.concat_map (fun (_, gs) -> gs) (Array.to_list results))
  in
  Array.sort (fun a b -> compare a.ordinal b.ordinal) gens;
  let sum f = Array.fold_left (fun acc s -> acc + f s) 0 shards in
  let maxf f = Array.fold_left (fun acc s -> Float.max acc (f s)) 0.0 shards in
  let sum_wall =
    Array.fold_left (fun acc (s : shard_report) -> acc +. s.wall_s) 0.0 shards
  in
  let first_violation =
    Array.fold_left
      (fun acc (s : shard_report) -> earlier acc s.first_violation)
      None shards
  in
  {
    domains = t.domains;
    shards;
    gens;
    acquired = t.n_acquired;
    peak_live = t.peak_live;
    delivered_packets = sum (fun s -> s.delivered_packets);
    delivered_bytes = sum (fun s -> s.delivered_bytes);
    markers_sent = sum (fun s -> s.markers_sent);
    fifo_violations = sum (fun s -> s.fifo_violations);
    first_violation;
    wall_s;
    end_time = maxf (fun s -> s.end_time);
    efficiency =
      (if wall_s > 0.0 then sum_wall /. (float_of_int t.domains *. wall_s)
       else 1.0);
  }
