(** Render a {!Stripe_obs.Counters} registry through the metrics layer.

    This is the bridge between the observability subsystem and the
    experiment reports: the per-channel counter registry becomes a
    {!Table} (for run summaries) or a {!Summary} (for cross-channel
    statistics such as load-balance spread). *)

val table : ?title:string -> Stripe_obs.Counters.t -> Table.t
(** One row per channel: transmitted packets/bytes, physical arrivals,
    logical deliveries, wire and queue drops, marker-rule and watchdog
    skips, carrier losses, markers sent/applied, and the high-water
    resequencing-buffer occupancy. *)

val merged_table : ?title:string -> Stripe_obs.Counters.t list -> Table.t
(** {!table} over the merge of per-shard registries
    ({!Stripe_obs.Counters.merged}) — the aggregate view a sharded fleet
    reports at its merge barrier. *)

val render : ?title:string -> Stripe_obs.Counters.t -> string
(** [Table.render] of {!table}, plus a trailing line with the
    channel-less drop count (packets the sender had no live channel for)
    when it is non-zero. *)

val balance : Stripe_obs.Counters.t -> Summary.t
(** Distribution of transmitted bytes across channels — mean/stddev/spread
    of the load sharing (§3.3's fairness, as a statistic). *)

val buffer_high_water : Stripe_obs.Counters.t -> Summary.t
(** Distribution of per-channel high-water buffer occupancy (packets). *)
