(** Synchronization-recovery measurement (§6.3, Theorem 5.1).

    Records each delivery as a [(time, seq)] pair. Given the instant
    channel errors stopped, [resync_time] finds how long after that
    instant the delivered stream became — and stayed — in order, i.e. the
    time at which quasi-FIFO turned back into FIFO. *)

type t

val create : unit -> t

val observe : t -> now:float -> seq:int -> unit

val deliveries : t -> int

val resync_time : t -> errors_stop:float -> float option
(** [resync_time t ~errors_stop] is [Some (t_sync -. errors_stop)] where
    [t_sync] is the earliest delivery time at or after [errors_stop] from
    which the remaining stream is strictly increasing in [seq] (and at
    least one delivery follows, so an empty tail does not count as
    recovery). [None] if the stream never recovers, or recovers only
    vacuously. If delivery was already in order at [errors_stop], the
    result is [Some 0.]. *)

val first_after : t -> time:float -> float option
(** Time of the first delivery at or after [time] — e.g. the moment
    service resumed after a failover, given the instant of the fault. *)

val max_gap : t -> from_:float -> until_:float -> float
(** Longest interval within [\[from_, until_\]] containing no delivery —
    the worst service outage the stream experienced in the window. The
    edges count: time from [from_] to the first delivery in the window,
    and from the last one to [until_]. [until_ -. from_] when the window
    saw no delivery at all. *)

val availability : t -> from_:float -> until_:float -> bucket:float -> float
(** Fraction of [bucket]-second slots of [\[from_, until_)] in which at
    least one packet was delivered — the availability a failover
    experiment reports (1.0 = service never paused for a whole bucket). *)

val in_order_after : t -> time:float -> bool
(** Whether every delivery strictly after [time] arrived in increasing
    [seq] order. *)

val out_of_order_after : t -> time:float -> int
(** Late deliveries (seq below the running maximum of the tail) strictly
    after [time]. *)

(** {2 Outage intervals}

    Pure arithmetic over [(start, stop)] down intervals, for the
    chaos/failover reports. Chaos schedules produce {e overlapping}
    outages (a storm over several channels, a crash inside a storm);
    summing per-event durations double-counts the overlap, so these
    work on the union. Degenerate intervals ([stop <= start]) are
    ignored. *)

val merge_intervals : (float * float) list -> (float * float) list
(** The union: sorted, disjoint, touching intervals coalesced. *)

val merge_parts : (float * float) list list -> (float * float) list
(** Union across per-shard outage lists — {!merge_intervals} of the
    concatenation. Because the union is idempotent and associative, any
    partition of one outage set across shards merges to the same result
    as the unsharded set; the downstream statistics ({!downtime},
    {!interval_availability}, {!longest_outage}, {!mttr}) are functions
    of the union, so they agree too. *)

val downtime : (float * float) list -> float
(** Total length of the union — the time at least one outage was in
    effect, each instant counted once. *)

val interval_availability :
  outages:(float * float) list -> from_:float -> until_:float -> float
(** [1 - downtime(union clipped to [from_, until_]) / (until_ - from_)]:
    the fraction of the window with no outage in effect. [1.0] on an
    empty window. *)

val longest_outage : (float * float) list -> float
(** Length of the longest merged outage — the worst single service
    interruption, overlap-aware. *)

val mttr : (float * float) list -> float option
(** Mean length of the merged outages — mean time to repair over
    distinct service interruptions. [None] without outages. *)
