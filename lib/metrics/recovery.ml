type t = { mutable rev_log : (float * int) list; mutable n : int }

let create () = { rev_log = []; n = 0 }

let observe t ~now ~seq =
  t.rev_log <- (now, seq) :: t.rev_log;
  t.n <- t.n + 1

let deliveries t = t.n

let log t = List.rev t.rev_log

(* Walk the delivery log backwards, maintaining the start of the longest
   strictly-increasing suffix. *)
let suffix_start t =
  match t.rev_log with
  | [] -> None
  | (tm, seq) :: rest ->
    let rec walk acc_time acc_seq = function
      | [] -> Some acc_time
      | (tm', seq') :: rest ->
        if seq' < acc_seq then walk tm' seq' rest else Some acc_time
    in
    walk tm seq rest

let resync_time t ~errors_stop =
  match suffix_start t with
  | None -> None
  | Some start ->
    (* The suffix must contain at least one delivery after errors stop;
       otherwise nothing was ever delivered post-recovery to witness it. *)
    let witnessed =
      List.exists (fun (tm, _) -> tm >= start && tm >= errors_stop) t.rev_log
    in
    if not witnessed then None
    else Some (max 0.0 (start -. errors_stop))

let in_order_after t ~time =
  let tail = List.filter (fun (tm, _) -> tm > time) (log t) in
  let rec check last = function
    | [] -> true
    | (_, seq) :: rest -> if seq > last then check seq rest else false
  in
  check min_int tail

let first_after t ~time =
  let rec find = function
    | [] -> None
    | (tm, _) :: rest -> if tm >= time then Some tm else find rest
  in
  find (log t)

let max_gap t ~from_ ~until_ =
  if until_ <= from_ then 0.0
  else begin
    let rec walk last acc = function
      | [] -> Stdlib.max acc (until_ -. last)
      | (tm, _) :: rest ->
        if tm < from_ then walk last acc rest
        else if tm > until_ then Stdlib.max acc (until_ -. last)
        else walk tm (Stdlib.max acc (tm -. last)) rest
    in
    walk from_ 0.0 (log t)
  end

let availability t ~from_ ~until_ ~bucket =
  if bucket <= 0.0 then
    invalid_arg "Recovery.availability: bucket must be positive";
  if until_ <= from_ then 1.0
  else begin
    let n = int_of_float (ceil ((until_ -. from_) /. bucket)) in
    let hit = Array.make n false in
    List.iter
      (fun (tm, _) ->
        if tm >= from_ && tm < until_ then begin
          let i = int_of_float ((tm -. from_) /. bucket) in
          if i >= 0 && i < n then hit.(i) <- true
        end)
      t.rev_log;
    let k = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 hit in
    float_of_int k /. float_of_int n
  end

(* Outage-interval arithmetic. Chaos runs produce overlapping down
   intervals — a storm over several channels, a crash inside a storm —
   and summing per-event durations double-counts the overlap, inflating
   downtime and deflating availability. Everything below therefore works
   on the union: merged, disjoint, sorted intervals. *)

let merge_intervals ivs =
  let ivs =
    List.sort
      (fun (a, _) (b, _) -> Float.compare a b)
      (List.filter (fun (a, b) -> b > a) ivs)
  in
  match ivs with
  | [] -> []
  | (a0, b0) :: rest ->
    let rec go a b acc = function
      | [] -> List.rev ((a, b) :: acc)
      | (a', b') :: rest ->
        if a' <= b then go a (Float.max b b') acc rest
        else go a' b' ((a, b) :: acc) rest
    in
    go a0 b0 [] rest

let merge_parts parts = merge_intervals (List.concat parts)

let total_down ivs =
  List.fold_left (fun s (a, b) -> s +. (b -. a)) 0.0 ivs

let downtime ivs = total_down (merge_intervals ivs)

let interval_availability ~outages ~from_ ~until_ =
  if until_ <= from_ then 1.0
  else begin
    let clipped =
      List.filter_map
        (fun (a, b) ->
          let a = Float.max a from_ and b = Float.min b until_ in
          if b > a then Some (a, b) else None)
        (merge_intervals outages)
    in
    1.0 -. (total_down clipped /. (until_ -. from_))
  end

let longest_outage outages =
  List.fold_left (fun m (a, b) -> Float.max m (b -. a)) 0.0
    (merge_intervals outages)

let mttr outages =
  match merge_intervals outages with
  | [] -> None
  | merged -> Some (total_down merged /. float_of_int (List.length merged))

let out_of_order_after t ~time =
  let tail = List.filter (fun (tm, _) -> tm > time) (log t) in
  let late = ref 0 in
  let max_seen = ref min_int in
  List.iter
    (fun (_, seq) ->
      if seq < !max_seen then incr late;
      if seq > !max_seen then max_seen := seq)
    tail;
  !late
