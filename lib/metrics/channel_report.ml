module Obs = Stripe_obs

let table ?(title = "per-channel counters") (reg : Obs.Counters.t) =
  let tbl =
    Table.create ~title
      ~columns:
        [
          "ch"; "tx pkts"; "tx bytes"; "arrived"; "delivered"; "dropped";
          "txq drop"; "skips"; "wd skip"; "down"; "mk tx"; "mk rx"; "buf hw";
          "dup"; "reord"; "rdepth"; "crpt"; "ovfl";
        ]
  in
  for i = 0 to Obs.Counters.n_channels reg - 1 do
    let c = Obs.Counters.channel reg i in
    Table.add_row tbl
      [
        string_of_int i;
        string_of_int c.Obs.Counters.tx_packets;
        string_of_int c.Obs.Counters.tx_bytes;
        string_of_int c.Obs.Counters.arrivals;
        string_of_int c.Obs.Counters.delivered_packets;
        string_of_int c.Obs.Counters.drops;
        string_of_int c.Obs.Counters.txq_drops;
        string_of_int c.Obs.Counters.skips;
        string_of_int c.Obs.Counters.watchdog_skips;
        string_of_int c.Obs.Counters.downs;
        string_of_int c.Obs.Counters.markers_sent;
        string_of_int c.Obs.Counters.markers_applied;
        string_of_int c.Obs.Counters.hw_buffered_packets;
        string_of_int c.Obs.Counters.dup_discards;
        string_of_int c.Obs.Counters.reorder_restores;
        string_of_int c.Obs.Counters.reorder_depth;
        string_of_int c.Obs.Counters.corrupt_discards;
        string_of_int c.Obs.Counters.buffer_overflows;
      ]
  done;
  tbl

let merged_table ?title regs = table ?title (Obs.Counters.merged regs)

let render ?title reg =
  let s = Table.render (table ?title reg) in
  let no_ch = Obs.Counters.no_channel_drops reg in
  if no_ch = 0 then s
  else
    Printf.sprintf "%s(dropped with every channel suspended: %d)\n" s no_ch

let balance reg =
  let s = Summary.create () in
  for i = 0 to Obs.Counters.n_channels reg - 1 do
    Summary.add s
      (float_of_int (Obs.Counters.channel reg i).Obs.Counters.tx_bytes)
  done;
  s

let buffer_high_water reg =
  let s = Summary.create () in
  for i = 0 to Obs.Counters.n_channels reg - 1 do
    Summary.add s
      (float_of_int
         (Obs.Counters.channel reg i).Obs.Counters.hw_buffered_packets)
  done;
  s
