module Sender = struct
  type segment = { off : int; len : int }

  type t = {
    sim : Stripe_netsim.Sim.t;
    window : int;
    base_rto : float;
    next_segment_size : unit -> int;
    transmit : off:int -> size:int -> unit;
    mutable snd_una : int;
    mutable snd_nxt : int;
    (* Oldest first. A FIFO queue, not a list: segments are appended at
       the tail per fill and a cumulative ACK always covers a prefix, so
       both sides are O(1) pops/pushes where list append + filter were
       O(outstanding) per segment. *)
    outstanding : segment Queue.t;
    mutable running : bool;
    mutable alive : bool;
    mutable rto : float;
    mutable timer_version : int;
    mutable n_segments : int;
    mutable n_retx : int;
    mutable n_timeouts : int;
  }

  let create sim ?(window = 131072) ?(rto = 0.2) ~next_segment_size ~transmit () =
    if window <= 0 then invalid_arg "Tcp_lite.Sender.create: window must be positive";
    if rto <= 0.0 then invalid_arg "Tcp_lite.Sender.create: rto must be positive";
    {
      sim;
      window;
      base_rto = rto;
      next_segment_size;
      transmit;
      snd_una = 0;
      snd_nxt = 0;
      outstanding = Queue.create ();
      running = false;
      alive = true;
      rto;
      timer_version = 0;
      n_segments = 0;
      n_retx = 0;
      n_timeouts = 0;
    }

  let in_flight t = t.snd_nxt - t.snd_una

  let rec arm_timer t =
    t.timer_version <- t.timer_version + 1;
    let version = t.timer_version in
    Stripe_netsim.Sim.schedule_after t.sim ~delay:t.rto (fun () ->
        if
          t.alive && version = t.timer_version
          && not (Queue.is_empty t.outstanding)
        then begin
          (* Go-back-N: resend everything outstanding, oldest first. *)
          t.n_timeouts <- t.n_timeouts + 1;
          t.rto <- Float.min (t.rto *. 2.0) (t.base_rto *. 8.0);
          Queue.iter
            (fun seg ->
              t.n_retx <- t.n_retx + 1;
              t.n_segments <- t.n_segments + 1;
              t.transmit ~off:seg.off ~size:seg.len)
            t.outstanding;
          arm_timer t
        end)

  let fill t =
    if t.running && t.alive then begin
      let progressed = ref false in
      let continue = ref true in
      while !continue do
        if in_flight t >= t.window then continue := false
        else begin
          let size = t.next_segment_size () in
          if size <= 0 then invalid_arg "Tcp_lite: segment size must be positive";
          let seg = { off = t.snd_nxt; len = size } in
          Queue.push seg t.outstanding;
          t.snd_nxt <- t.snd_nxt + size;
          t.n_segments <- t.n_segments + 1;
          progressed := true;
          t.transmit ~off:seg.off ~size
        end
      done;
      if !progressed && not (Queue.is_empty t.outstanding) then arm_timer t
    end

  let start t =
    t.running <- true;
    fill t

  let stop t = t.running <- false

  let shutdown t =
    t.running <- false;
    t.alive <- false;
    t.timer_version <- t.timer_version + 1

  let on_ack t a =
    if a > t.snd_una then begin
      t.snd_una <- a;
      (* Cumulative: the ACK covers a prefix of the offset-ordered
         queue, so only head pops are ever needed. *)
      while
        (not (Queue.is_empty t.outstanding))
        &&
        let seg = Queue.peek t.outstanding in
        seg.off + seg.len <= a
      do
        ignore (Queue.pop t.outstanding)
      done;
      t.rto <- t.base_rto;
      if Queue.is_empty t.outstanding then
        t.timer_version <- t.timer_version + 1
      else arm_timer t;
      fill t
    end

  let bytes_acked t = t.snd_una
  let segments_sent t = t.n_segments
  let retransmissions t = t.n_retx
  let timeouts t = t.n_timeouts
end

module Receiver = struct
  type t = {
    send_ack : int -> unit;
    deliver : bytes:int -> unit;
    mutable next : int;
    buffered : (int, int) Hashtbl.t;  (* off -> len *)
    mutable n_ooo : int;
    mutable n_dup : int;
    mutable delivered : int;
  }

  let create ~send_ack ~deliver () =
    {
      send_ack;
      deliver;
      next = 0;
      buffered = Hashtbl.create 64;
      n_ooo = 0;
      n_dup = 0;
      delivered = 0;
    }

  let drain_contiguous t =
    let continue = ref true in
    while !continue do
      match Hashtbl.find_opt t.buffered t.next with
      | Some len ->
        Hashtbl.remove t.buffered t.next;
        t.next <- t.next + len;
        t.delivered <- t.delivered + len;
        t.deliver ~bytes:len
      | None -> continue := false
    done

  let rx t ~off ~len =
    if len <= 0 then invalid_arg "Tcp_lite.Receiver.rx: bad length";
    let result =
      if off + len <= t.next || Hashtbl.mem t.buffered off then begin
        t.n_dup <- t.n_dup + 1;
        `Duplicate
      end
      else if off = t.next then begin
        t.next <- t.next + len;
        t.delivered <- t.delivered + len;
        t.deliver ~bytes:len;
        drain_contiguous t;
        `In_order
      end
      else begin
        (* A hole precedes this segment: park it for reassembly. Segments
           never overlap partially in this model (sender always cuts at
           the same offsets), so offset identity suffices. *)
        Hashtbl.replace t.buffered off len;
        t.n_ooo <- t.n_ooo + 1;
        `Out_of_order
      end
    in
    t.send_ack t.next;
    result

  let rcv_nxt t = t.next
  let bytes_delivered t = t.delivered
  let ooo_segments t = t.n_ooo
  let duplicate_segments t = t.n_dup
  let reassembly_buffered t = Hashtbl.length t.buffered
end
