type marker = {
  m_channel : int;
  m_round : int;
  m_dc : int;
  m_credit : int option;
  m_reset : bool;
  m_epoch : int;
  m_gen : int;
  m_cksum : int;
}

type kind =
  | Data
  | Marker of marker

type t = {
  seq : int;
  size : int;
  kind : kind;
  flow : int;
  frame : int;
  off : int;
  born : float;
}

let marker_size = 36

(* 16-bit integrity checksum over every marker field except the checksum
   itself. A corrupted marker that slipped past the link CRC would
   otherwise poison the receiver's (round, DC) state; with the checksum
   the receiver can discard it and resynchronize from the next good
   marker (Theorem 5.1 still applies — a discarded marker is just a lost
   marker). Fowler–Noll–Vo-style mixing; strength is irrelevant, we only
   need random damage to miss the right value with high probability. *)
let marker_checksum_of ~channel ~round ~dc ~credit ~reset ~epoch ~gen =
  let mix acc v = (acc * 16777619) lxor (v land 0xffffffff) in
  let acc = 2166136261 in
  let acc = mix acc channel in
  let acc = mix acc round in
  let acc = mix acc dc in
  let acc = mix acc (match credit with None -> -1 | Some c -> c) in
  let acc = mix acc (if reset then 1 else 0) in
  let acc = mix acc epoch in
  let acc = mix acc gen in
  (acc lxor (acc lsr 16)) land 0xffff

let marker_checksum m =
  marker_checksum_of ~channel:m.m_channel ~round:m.m_round ~dc:m.m_dc
    ~credit:m.m_credit ~reset:m.m_reset ~epoch:m.m_epoch ~gen:m.m_gen

let marker_valid m = m.m_cksum = marker_checksum m

let data ?(flow = 0) ?(frame = -1) ?(off = -1) ?(born = 0.0) ~seq ~size () =
  if size <= 0 then invalid_arg "Packet.data: size must be positive";
  { seq; size; kind = Data; flow; frame; off; born }

let marker ?credit ?(reset = false) ?(epoch = 0) ?(gen = 0) ~channel ~round
    ~dc ~born () =
  {
    seq = -1;
    size = marker_size;
    kind =
      Marker
        {
          m_channel = channel;
          m_round = round;
          m_dc = dc;
          m_credit = credit;
          m_reset = reset;
          m_epoch = epoch;
          m_gen = gen;
          m_cksum =
            marker_checksum_of ~channel ~round ~dc ~credit ~reset ~epoch ~gen;
        };
    flow = 0;
    frame = -1;
    off = -1;
    born;
  }

(* Wire damage that the link CRC missed: perturb the (round, DC) stamp —
   the fields whose corruption is dangerous — while keeping the now-stale
   checksum, so [marker_valid] is false. [m_channel] is left alone: in a
   real deployment the marker arrives on a physical port, so the receiver
   never routes by a payload channel field; tests rely on that too. *)
let mangle_marker ~salt t =
  match t.kind with
  | Data -> t
  | Marker m ->
    let salt = (salt land 0x3fffffff) lor 1 in
    let m' =
      {
        m with
        m_round = m.m_round lxor salt;
        m_dc = m.m_dc lxor (salt * 7919);
      }
    in
    (* Degenerate salts could map the stamp to itself; force a change. *)
    let m' = if m' = m then { m with m_dc = m.m_dc + 1 } else m' in
    { t with kind = Marker m' }

let is_marker t = match t.kind with Marker _ -> true | Data -> false

let get_marker t =
  match t.kind with
  | Marker m -> m
  | Data -> invalid_arg "Packet.get_marker: data packet"

let pp fmt t =
  match t.kind with
  | Data -> Format.fprintf fmt "#%d(%dB)" t.seq t.size
  | Marker m ->
    Format.fprintf fmt "M(ch=%d,R=%d,DC=%d%s%s)" m.m_channel m.m_round m.m_dc
      (match m.m_credit with
      | None -> ""
      | Some c -> Printf.sprintf ",credit=%d" c)
      ((if m.m_reset then ",reset" else "")
      ^ (if m.m_epoch <> 0 then Printf.sprintf ",e=%d" m.m_epoch else "")
      ^ if m.m_gen <> 0 then Printf.sprintf ",g=%d" m.m_gen else "")

let equal a b = a = b

let compare_seq a b = compare a.seq b.seq
