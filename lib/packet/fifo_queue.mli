(** FIFO packet buffer with byte accounting.

    Used for the per-channel receive buffers of logical reception (§4) and
    for transmit queues. Tracks current and high-water occupancy in both
    packets and bytes, which the benchmarks report to size real buffers
    against channel skew. The size of each element is supplied at [push]
    so the queue stays generic.

    Implemented as a ring buffer in struct-of-arrays layout: the
    steady-state push/pop cycle allocates nothing, and popped slots are
    cleared so delivered values can be collected. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> size:int -> 'a -> unit
(** Allocation-free except when the ring grows. *)

val pop : 'a t -> 'a option
(** Remove the oldest element. *)

val pop_exn : 'a t -> 'a
(** Remove the oldest element without boxing an option. Raises
    [Invalid_argument] if the queue is empty: guard with {!is_empty}. *)

val peek : 'a t -> 'a option
(** Oldest element without removing it. *)

val peek_unsafe : 'a t -> 'a
(** Oldest element without removing it or boxing an option. The queue
    must be non-empty (unchecked): guard with {!is_empty}. *)

val peek_size_unsafe : 'a t -> int
(** Recorded size of the oldest element. The queue must be non-empty
    (unchecked): guard with {!is_empty}. *)

val is_empty : 'a t -> bool

val length : 'a t -> int

val bytes : 'a t -> int

val iter : 'a t -> ('a -> size:int -> unit) -> unit
(** Visit every element oldest-first with its recorded size, without
    allocating. The queue must not be mutated during iteration. *)

val high_water_packets : 'a t -> int
(** Maximum simultaneous occupancy (packets) observed since the last
    {!reset_high_water} (or creation). *)

val high_water_bytes : 'a t -> int

val reset_high_water : 'a t -> unit
(** Restart high-water tracking from the current occupancy: after this,
    [high_water_packets]/[high_water_bytes] report the maxima seen since
    this call. Lets long-running experiments measure phases (e.g. after
    a warm-up) without recreating queues. *)

val clear : 'a t -> unit
(** Drop all elements and reset byte accounting to zero. High-water
    marks are deliberately {e kept} — they record the lifetime maximum
    for buffer-sizing reports, and surviving [clear] is what makes the
    end-of-run report meaningful after fault-recovery paths flush
    queues. Call {!reset_high_water} explicitly to restart tracking. *)

val recycle : 'a t -> unit
(** [clear] followed by {!reset_high_water}: the queue is ready to serve
    a {e new} owner. Pools recycling queues across bundles must use this
    rather than bare [clear] — [clear]'s surviving high-water marks are a
    lifetime maximum by design, and carrying them into the next owner
    would report cross-bundle maxima as if one bundle had seen them. The
    backing arrays are kept, so a warmed-up queue re-enters service
    without reallocation. *)

val to_list : 'a t -> 'a list
(** Oldest first. O(n). *)
