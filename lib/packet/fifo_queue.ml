(* Ring buffer in struct-of-arrays layout.

   The previous implementation stored [(v, size)] tuples in a stdlib
   [Queue]: every push allocated a tuple plus a queue cell, and every
   pop boxed an option — three allocations per packet per queue on the
   hot path. Values and sizes now live in parallel arrays indexed by a
   wrapping head pointer (power-of-two capacity, mask indexing), so the
   steady-state push/pop cycle allocates nothing.

   Popped slots are reset to a physical-equality dummy so delivered
   values are collectable immediately. The dummy never escapes: every
   read is guarded by [len]. *)

type 'a t = {
  mutable vals : 'a array;
  mutable sizes : int array;
  mutable head : int;  (* index of the oldest element *)
  mutable len : int;
  mutable total_bytes : int;
  mutable hw_packets : int;
  mutable hw_bytes : int;
}

let dummy : unit -> 'a = fun () -> Obj.magic ()

let initial_capacity = 8

let create () =
  {
    vals = [||];
    sizes = [||];
    head = 0;
    len = 0;
    total_bytes = 0;
    hw_packets = 0;
    hw_bytes = 0;
  }

let grow t =
  let cap = Array.length t.vals in
  if t.len = cap then begin
    let ncap = if cap = 0 then initial_capacity else 2 * cap in
    let vals = Array.make ncap (dummy ()) in
    let sizes = Array.make ncap 0 in
    for i = 0 to t.len - 1 do
      let j = (t.head + i) land (cap - 1) in
      vals.(i) <- t.vals.(j);
      sizes.(i) <- t.sizes.(j)
    done;
    t.vals <- vals;
    t.sizes <- sizes;
    t.head <- 0
  end

let push t ~size v =
  grow t;
  let mask = Array.length t.vals - 1 in
  let i = (t.head + t.len) land mask in
  t.vals.(i) <- v;
  t.sizes.(i) <- size;
  t.len <- t.len + 1;
  t.total_bytes <- t.total_bytes + size;
  if t.len > t.hw_packets then t.hw_packets <- t.len;
  if t.total_bytes > t.hw_bytes then t.hw_bytes <- t.total_bytes

let is_empty t = t.len = 0

let length t = t.len

let bytes t = t.total_bytes

let peek_unsafe t = t.vals.(t.head)

let peek_size_unsafe t = t.sizes.(t.head)

let peek t = if t.len = 0 then None else Some t.vals.(t.head)

let pop_exn t =
  if t.len = 0 then invalid_arg "Fifo_queue.pop_exn: empty queue";
  let mask = Array.length t.vals - 1 in
  let v = t.vals.(t.head) in
  t.vals.(t.head) <- dummy ();
  t.total_bytes <- t.total_bytes - t.sizes.(t.head);
  t.head <- (t.head + 1) land mask;
  t.len <- t.len - 1;
  v

let pop t = if t.len = 0 then None else Some (pop_exn t)

let iter t f =
  let mask = Array.length t.vals - 1 in
  for i = 0 to t.len - 1 do
    let j = (t.head + i) land mask in
    f t.vals.(j) ~size:t.sizes.(j)
  done

let high_water_packets t = t.hw_packets

let high_water_bytes t = t.hw_bytes

let reset_high_water t =
  t.hw_packets <- t.len;
  t.hw_bytes <- t.total_bytes

let clear t =
  let mask = Array.length t.vals - 1 in
  for i = 0 to t.len - 1 do
    t.vals.((t.head + i) land mask) <- dummy ()
  done;
  t.head <- 0;
  t.len <- 0;
  t.total_bytes <- 0

let recycle t =
  clear t;
  reset_high_water t

let to_list t =
  let acc = ref [] in
  let mask = Array.length t.vals - 1 in
  for i = t.len - 1 downto 0 do
    acc := t.vals.((t.head + i) land mask) :: !acc
  done;
  !acc
