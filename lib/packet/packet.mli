(** Packets exchanged over striped channels.

    A packet is either a {e data} packet or a {e marker} packet. The paper
    is emphatic that data packets are never modified by the striping
    protocol — no sequence number or header is added. Marker packets are
    control packets distinguished from data by a link-level {e codepoint}
    (e.g. a different Ethernet type field), which exists out of band of
    the payload (§5).

    Consequently the [seq] field here is {b measurement metadata only}: it
    records the position of the packet in the sender's input stream so
    that tests and benchmarks can detect misordering, exactly like the
    packet labels a–f in the paper's figures. No protocol component is
    allowed to read [seq] of a data packet to make decisions (the
    resequencer works purely from arrival channels and marker contents).

    Markers carry the sender's per-channel implicit packet number: the
    round number and deficit-counter value the next data packet on that
    channel will be sent with, plus an optional piggybacked flow-control
    credit (§6.3). *)

type marker = {
  m_channel : int;  (** Sender's number for the channel the marker rides. *)
  m_round : int;  (** Round number of the next data packet on the channel. *)
  m_dc : int;  (** Deficit counter value for that next data packet. *)
  m_credit : int option;  (** Piggybacked FCVC credit, if flow control is on. *)
  m_reset : bool;
      (** Reset barrier (§5: node crashes are handled "by doing a
          reset"): the sender reinitialized its state; data behind this
          marker belongs to the fresh epoch. The receiver reinitializes
          once it has reached the reset marker on every channel. *)
  m_epoch : int;
      (** Sender incarnation number. Graceful resets (retune, resume,
          add/remove) keep the epoch; only a crash-restart increments it.
          A receiver that sees a marker from a later epoch knows the
          sender lost all striping state: buffered pre-crash data on that
          channel is stale and the channel must join the crash reset
          barrier even if the restart's reset marker itself was lost
          (PROTOCOL.md §12). Packed into the marker's existing padding,
          so [marker_size] is unchanged; covered by [m_cksum]. *)
  m_gen : int;
      (** Reset-barrier generation within the epoch: the sender's count
          of §5 resets since its last (re)start, stamped on every marker
          (periodic and reset alike). §5 assumes one reset in flight at
          a time; under correlated faults barriers can overtake each
          other — a sender resetting again while some links were down
          loses part of each generation's markers — and without this tag
          the receiver can pair surviving markers from different
          generations, stranding a barrier forever or parking phantom
          half-barriers that trap data behind them. With the tag the
          receiver adopts generations in order and discards a reset
          marker from an already-adopted generation as the duplicate it
          is. Compared lexicographically after [m_epoch]; packed into
          marker padding like the epoch; covered by [m_cksum]. *)
  m_cksum : int;
      (** 16-bit integrity checksum over the other marker fields, filled
          in by the {!marker} constructor. A receiver verifies it with
          {!marker_valid} before trusting the (round, DC) stamp; a
          mismatch means wire damage the link CRC missed, and the marker
          must be discarded (treated as lost — Theorem 5.1 then bounds
          the resynchronization delay at the next good marker). *)
}

type kind =
  | Data
  | Marker of marker

type t = {
  seq : int;  (** Measurement-only: position in the sender's input stream. *)
  size : int;  (** Wire size in bytes. *)
  kind : kind;
  flow : int;  (** Flow/address label, used only by the hashing baseline. *)
  frame : int;  (** Application frame id (video workloads); -1 otherwise. *)
  off : int;
      (** Transport byte offset — what a TCP-like header would carry;
          opaque to the striping protocol. -1 when unused. Retransmissions
          share [off] but get a fresh [seq]. *)
  born : float;  (** Simulated time the packet entered the sender. *)
}

val marker_size : int
(** Wire size of a marker packet (bytes). Small — the paper's marker only
    carries a counter, plus this implementation's integrity checksum. *)

val marker_checksum : marker -> int
(** The checksum the marker's payload fields should carry. *)

val marker_valid : marker -> bool
(** Whether [m_cksum] matches {!marker_checksum} — false iff the marker
    was damaged in flight. Constructor-built markers are always valid. *)

val mangle_marker : salt:int -> t -> t
(** Simulated wire damage that slipped past the link CRC: perturbs the
    marker's (round, DC) stamp deterministically from [salt] while
    keeping the now-stale checksum, so {!marker_valid} is [false] on the
    result. Data packets are returned unchanged. Intended as the [corrupt]
    hook of a simulated link. *)

val data :
  ?flow:int -> ?frame:int -> ?off:int -> ?born:float -> seq:int -> size:int ->
  unit -> t
(** [data ~seq ~size ()] builds a data packet. [size] must be positive. *)

val marker :
  ?credit:int -> ?reset:bool -> ?epoch:int -> ?gen:int -> channel:int ->
  round:int -> dc:int -> born:float -> unit -> t
(** Build a marker packet; [reset] defaults to [false], [epoch] and
    [gen] to [0]. Markers have [seq = -1]. *)

val is_marker : t -> bool

val get_marker : t -> marker
(** Raises [Invalid_argument] on a data packet. *)

val pp : Format.formatter -> t -> unit
(** E.g. ["#12(550B)"] for data, ["M(ch=1,R=7,DC=300)"] for markers. *)

val equal : t -> t -> bool
val compare_seq : t -> t -> int
