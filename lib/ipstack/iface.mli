(** Real IP interface: a convergence layer over one data link.

    An interface owns the transmit side of one simulated {!link:
    Stripe_netsim.Link.t} and exposes the IP convergence functions of
    §6.1: address mapping via {!Arp}, encapsulation of IP datagrams in
    link frames, MTU enforcement, and receive-side demultiplexing by
    {e codepoint}. Codepoints are the key enabler for header-free
    striping: striped IP data and marker packets use link-level types of
    their own ("on Ethernet, codepoints for marker packets are available
    simply by using a different packet type field"), leaving ordinary IP
    data packets and link formats untouched. *)

type codepoint =
  | Cp_ip  (** Ordinary IP datagram. *)
  | Cp_striped_ip  (** IP datagram striped by strIPe. *)
  | Cp_marker  (** strIPe marker control packet. *)

type frame =
  | Ip_frame of Ip.t
  | Striped_frame of Ip.t
  | Marker_frame of Stripe_packet.Packet.t

val frame_codepoint : frame -> codepoint

val frame_wire_size : overhead:int -> frame -> int
(** Size on the wire: payload size plus the per-frame link [overhead]. *)

type t

val create :
  Stripe_netsim.Sim.t ->
  name:string ->
  addr:Ip.addr ->
  prefix:int ->
  mtu:int ->
  ?link_overhead:int ->
  arp:Arp.t ->
  link:frame Stripe_netsim.Link.t ->
  unit ->
  t
(** [link_overhead] (default {!Stripe_packet.Sizes.ethernet_overhead}) is
    charged per frame on the wire. The link's own MTU, if any, should
    admit [mtu + link_overhead]. *)

val name : t -> string
val addr : t -> Ip.addr
val prefix : t -> int
val mtu : t -> int

val set_handler : t -> codepoint -> (frame -> unit) -> unit
(** Register the upper-layer receiver for a codepoint (IP input for
    [Cp_ip], the strIPe layer for [Cp_striped_ip] and [Cp_marker]).
    Frames with no registered handler are counted and dropped. *)

val rx : t -> frame -> unit
(** Wire-side entry point: connect the {e peer}'s link delivery to this.
    Demultiplexes by codepoint. *)

val send : t -> frame -> unit
(** Encapsulate and transmit. Resolves the IP next hop via ARP for IP
    frames (control frames skip resolution — they are link-local by
    construction). Raises [Invalid_argument] if the payload exceeds the
    interface MTU. Frames to unresolvable destinations are counted and
    dropped, as a real convergence layer does. *)

val queue_bytes : t -> int
(** Transmit-queue occupancy of the underlying link (for SQF). *)

val link_up : t -> bool
(** Carrier state of the underlying link. *)

val on_carrier : t -> (up:bool -> unit) -> unit
(** Subscribe to carrier transitions of the underlying link — the
    driver's link-state interrupt. {!Stripe_layer} uses this to suspend
    and resume dead members automatically. *)

val tx_frames : t -> int
val rx_frames : t -> int

val tx_failures : t -> int
(** Frames handed to the link that it refused or dropped immediately
    (transmit queue full, or carrier down). *)

val arp_failures : t -> int
val unclaimed_frames : t -> int
