open Stripe_packet

type t = {
  layer_name : string;
  mutable members : Iface.t array;
  mutable bundle_mtu : int;
  striper : Stripe_core.Striper.t;
  reseq : Stripe_core.Resequencer.t option;
  deliver_up : Ip.t -> unit;
  reorder_stats : Stripe_core.Reorder.t;
  (* A real kernel keeps the frame <-> datagram association by passing
     mbuf pointers through the striping layer; the simulation passes the
     protocol-visible Packet.t through striper/resequencer and
     reassociates the enclosing datagram via the measurement-only [seq]
     id, which is unique per sender stream and never consulted by the
     protocol logic itself. *)
  rx_envelopes : (int, Ip.t) Hashtbl.t;
  mutable tx_envelope : Ip.t option;
  auto_suspend : bool;
  mutable n_sent : int;
  mutable n_delivered : int;
  (* While a member removal waits for its goodbye barrier, the send
     side (striper emit, carrier watchers) already uses the spliced
     indexing but frames STILL IN FLIGHT from the peer carry the old
     one — including the goodbye markers themselves. [(c, iface)] keeps
     the receive-side demux on the old numbering until the local
     resequencer adopts the staged removal at the barrier, at which
     point its buffer splice realigns everything and the two views
     converge (see [rx_channel_of]). *)
  mutable rx_pending_remove : (int * Iface.t) option;
  (* Set by [detach]: the layer has been torn down (bundle churn) and
     its closures still registered on the members — codepoint handlers
     and carrier watchers, neither of which the link layer can
     unregister — must go quiet instead of acting on a dead bundle. *)
  mutable detached : bool;
  (* Gray-failure self-healing (PROTOCOL.md §13): the health engine and
     the full-rate quantum vector its probation scaling is relative to.
     [health_tick] drives it; [nominal_quanta] tracks membership
     changes, not adaptive retunes — combining --health with an external
     adaptive retune policy on one layer is unsupported. *)
  health : Stripe_core.Health.t option;
  mutable nominal_quanta : int array;
  mutable health_retunes : int;
  mutable health_deferred : int;
}

let deliver_ip t ip =
  t.n_delivered <- t.n_delivered + 1;
  Stripe_core.Reorder.observe t.reorder_stats ~seq:ip.Ip.body.Packet.seq;
  t.deliver_up ip

(* The member's *current* channel index, by physical identity; -1 when
   the interface is not (or no longer) a member. Carrier watchers and rx
   handlers resolve through this at fire time rather than capturing the
   index at registration: membership can change underneath them
   ([add_member]/[remove_member]), and link-layer watchers cannot be
   unregistered — a stale captured index would misdirect events to
   whichever channel inherited it. *)
let channel_of t m =
  let rec go i =
    if i >= Array.length t.members then -1
    else if t.members.(i) == m then i
    else go (i + 1)
  in
  go 0

(* The receive-side index of a member: identical to [channel_of] except
   during a staged removal, when arriving frames must still resolve to
   the pre-splice numbering — the leaving interface keeps its old index
   [c] and survivors at or above [c] shift back up by one — until the
   resequencer's barrier adopts the splice (see [rx_pending_remove]). *)
let rx_channel_of t m =
  match t.rx_pending_remove with
  | None -> channel_of t m
  | Some (c, leaving) ->
    if m == leaving then c
    else
      let i = channel_of t m in
      if i < 0 then -1 else if i >= c then i + 1 else i

(* Wire one member interface into the layer: carrier transitions
   suspend/resume its channel (resume fires the §5 reset barrier, see
   {!Stripe_core.Striper.resume_channel}; watchers fire from the
   fault/link layer, never from inside [Striper.push], so the scheduler
   is between packets when the suspension lands), and the striped/marker
   codepoints demux into the resequencer. *)
let attach_member t m =
  if t.auto_suspend then
    Iface.on_carrier m (fun ~up ->
        let channel = if t.detached then -1 else channel_of t m in
        if channel >= 0 then
          if up then Stripe_core.Striper.resume_channel t.striper channel
          else Stripe_core.Striper.suspend_channel t.striper channel);
  let on_striped frame =
    let channel = if t.detached then -1 else rx_channel_of t m in
    if channel >= 0 then
      match frame with
      | Iface.Striped_frame ip -> (
        match t.reseq with
        | Some r ->
          Hashtbl.replace t.rx_envelopes ip.Ip.body.Packet.seq ip;
          Stripe_core.Resequencer.receive r ~channel ip.Ip.body
        | None -> deliver_ip t ip)
      | Iface.Marker_frame pkt -> (
        match t.reseq with
        | Some r -> Stripe_core.Resequencer.receive r ~channel pkt
        | None -> ())
      | Iface.Ip_frame _ -> ()
  in
  Iface.set_handler m Iface.Cp_striped_ip on_striped;
  Iface.set_handler m Iface.Cp_marker on_striped

let create ~name ~members ~scheduler ?marker ?now ?sink ?(resequence = true)
    ?(auto_suspend = true) ?watchdog ?rx_buffer_bytes ?overflow_policy
    ?on_pressure ?health ~deliver_up () =
  let n = Array.length members in
  if n = 0 then invalid_arg "Stripe_layer.create: no member interfaces";
  if Stripe_core.Scheduler.n_channels scheduler <> n then
    invalid_arg "Stripe_layer.create: scheduler arity <> member count";
  let bundle_mtu =
    Array.fold_left (fun acc m -> min acc (Iface.mtu m)) max_int members
  in
  let rx_envelopes = Hashtbl.create 1024 in
  let reorder_stats = Stripe_core.Reorder.create () in
  (* The striper's and resequencer's callbacks need the layer record,
     which needs them in turn; tie the knot through a forward cell. *)
  let self = ref None in
  let force_self () =
    match !self with
    | Some layer -> layer
    | None -> assert false
  in
  let striper =
    Stripe_core.Striper.create ~scheduler ?marker ?now ?sink
      ~emit:(fun ~channel pkt ->
        let layer = force_self () in
        let frame =
          if Packet.is_marker pkt then Iface.Marker_frame pkt
          else
            match layer.tx_envelope with
            | Some ip -> Iface.Striped_frame ip
            | None -> invalid_arg "Stripe_layer: data emit without envelope"
        in
        Iface.send layer.members.(channel) frame)
      ()
  in
  let reseq =
    if not resequence then None
    else
      match Stripe_core.Scheduler.deficit scheduler with
      | None ->
        invalid_arg
          "Stripe_layer.create: logical reception requires a CFQ scheduler \
           (pass ~resequence:false for non-causal baselines)"
      | Some d ->
        Some
          (Stripe_core.Resequencer.create
             ~deficit:(Stripe_core.Deficit.clone_initial d)
             ?now ?sink ?watchdog ?budget_bytes:rx_buffer_bytes
             ?overflow:overflow_policy ?on_pressure
             ~deliver:(fun ~channel:_ pkt ->
               let layer = force_self () in
               match Hashtbl.find_opt layer.rx_envelopes pkt.Packet.seq with
               | Some ip ->
                 Hashtbl.remove layer.rx_envelopes pkt.Packet.seq;
                 deliver_ip layer ip
               | None ->
                 invalid_arg "Stripe_layer: resequencer delivered unknown packet")
             ())
  in
  let health_engine =
    match health with
    | None -> None
    | Some config -> (
      match Stripe_core.Scheduler.deficit scheduler with
      | None ->
        invalid_arg
          "Stripe_layer.create: channel health requires a CFQ scheduler"
      | Some _ ->
        Some
          (Stripe_core.Health.create ~config
             ~live:(fun c ->
               let layer = force_self () in
               c >= 0
               && c < Array.length layer.members
               && Iface.link_up layer.members.(c))
             ?sink ~n ()))
  in
  let nominal_quanta =
    match Stripe_core.Scheduler.deficit scheduler with
    | Some d -> Stripe_core.Deficit.quanta d
    | None -> [||]
  in
  let layer =
    {
      layer_name = name;
      members;
      bundle_mtu;
      striper;
      reseq;
      deliver_up;
      reorder_stats;
      rx_envelopes;
      tx_envelope = None;
      auto_suspend;
      n_sent = 0;
      n_delivered = 0;
      rx_pending_remove = None;
      detached = false;
      health = health_engine;
      nominal_quanta;
      health_retunes = 0;
      health_deferred = 0;
    }
  in
  self := Some layer;
  (match reseq with
  | Some r ->
    Stripe_core.Resequencer.on_transition_adopted r (fun () ->
        layer.rx_pending_remove <- None)
  | None -> ());
  Array.iter (attach_member layer) members;
  layer

let name t = t.layer_name
let mtu t = t.bundle_mtu

(* Bundle-churn teardown. Link-layer carrier watchers cannot be
   unregistered and codepoint handlers survive until someone replaces
   them, so tearing a bundle down cannot physically remove the layer's
   closures from its members — instead they all check [detached] at fire
   time and go quiet. The members are immediately reusable: a new layer
   over the same interfaces replaces the codepoint handlers via
   [set_handler], and the old layer's watchers are inert. *)
let detach t =
  t.detached <- true;
  t.rx_pending_remove <- None;
  Hashtbl.reset t.rx_envelopes

let detached t = t.detached

let send t ip =
  if t.detached then
    invalid_arg
      (Printf.sprintf "Stripe_layer.send(%s): layer is detached" t.layer_name);
  if Ip.size ip > t.bundle_mtu then
    invalid_arg
      (Printf.sprintf "Stripe_layer.send(%s): datagram %d exceeds bundle MTU %d"
         t.layer_name (Ip.size ip) t.bundle_mtu);
  t.n_sent <- t.n_sent + 1;
  t.tx_envelope <- Some ip;
  Stripe_core.Striper.push t.striper ip.Ip.body;
  t.tx_envelope <- None;
  (* Belt-and-braces tx-failure detection: catch a member that was
     already down before the carrier watcher was registered (or when the
     link layer cannot signal carrier). Runs after [push] returns so the
     scheduler is never mutated mid-dispatch. *)
  if t.auto_suspend then
    Array.iteri
      (fun c m ->
        if
          (not (Iface.link_up m))
          && not (Stripe_core.Striper.suspended_channel t.striper c)
        then Stripe_core.Striper.suspend_channel t.striper c)
      t.members

let send_reset t = Stripe_core.Striper.send_reset t.striper

let crash_restart_sender ?quanta t =
  if t.detached then
    invalid_arg
      (Printf.sprintf "Stripe_layer.crash_restart_sender(%s): layer is detached"
         t.layer_name);
  Stripe_core.Striper.crash_restart ?quanta t.striper;
  (* The reboot forgot the administrative suspensions along with
     everything else — including the health engine's verdicts, which
     were endpoint policy state; channels restart healthy and must
     re-earn their quarantines from fresh evidence. *)
  (match t.health with
  | Some h ->
    for c = 0 to Stripe_core.Health.n_channels h - 1 do
      Stripe_core.Health.reset_channel h c
    done
  | None -> ());
  if t.auto_suspend then
    Array.iteri
      (fun c m ->
        if not (Iface.link_up m) then
          Stripe_core.Striper.suspend_channel t.striper c)
      t.members

let crash_restart_receiver t =
  match t.reseq with
  | None -> 0
  | Some r ->
    let wiped = Stripe_core.Resequencer.crash_restart r in
    (* The frame <-> datagram associations die with the receiver: wiped
       frames can never be delivered, and any staged-removal demux split
       was receiver state too. In-flight frames arriving after the
       restart re-register their envelopes on arrival. *)
    Hashtbl.reset t.rx_envelopes;
    t.rx_pending_remove <- None;
    wiped

let recompute_mtu t =
  t.bundle_mtu <-
    Array.fold_left (fun acc m -> min acc (Iface.mtu m)) max_int t.members

let add_member t ~quantum m =
  if channel_of t m >= 0 then
    invalid_arg
      (Printf.sprintf "Stripe_layer.add_member(%s): interface %s is already a \
                       member"
         t.layer_name (Iface.name m));
  (* Receive side first: the local resequencer starts buffering arrivals
     on the new index before the sender side can emit anything there (in
     the symmetric configuration where the peer performs the same
     membership change). *)
  (match t.reseq with
  | Some r -> ignore (Stripe_core.Resequencer.add_channel r ~quantum)
  | None -> ());
  (* The striper's emit callback indexes [t.members], so the array must
     already hold the newcomer when [Striper.add_channel] fires the §5
     reset barrier across the widened bundle. *)
  t.members <- Array.append t.members [| m |];
  recompute_mtu t;
  attach_member t m;
  let c = Stripe_core.Striper.add_channel t.striper ~quantum in
  if t.auto_suspend && not (Iface.link_up m) then
    Stripe_core.Striper.suspend_channel t.striper c;
  (match t.health with
  | Some h -> ignore (Stripe_core.Health.add_channel h)
  | None -> ());
  if t.nominal_quanta <> [||] then
    t.nominal_quanta <- Array.append t.nominal_quanta [| quantum |];
  c

let remove_member t c =
  let n = Array.length t.members in
  if c < 0 || c >= n then
    invalid_arg
      (Printf.sprintf "Stripe_layer.remove_member(%s): bad member %d"
         t.layer_name c);
  (match t.reseq with
  | Some r ->
    Stripe_core.Resequencer.remove_channel r c;
    (* Keep the demux on the old numbering until the barrier adopts. *)
    t.rx_pending_remove <- Some (c, t.members.(c))
  | None -> ());
  (* [Striper.remove_channel] fires the goodbye barrier while [c] still
     exists, so [t.members] must keep the leaving interface until the
     striper has shrunk; only then is it spliced out. Its carrier
     watcher and rx handlers stay registered but resolve to -1 via
     [channel_of] and go quiet once the removal completes. *)
  Stripe_core.Striper.remove_channel t.striper c;
  t.members <-
    Array.init (n - 1) (fun i ->
        if i < c then t.members.(i) else t.members.(i + 1));
  (match t.health with
  | Some h -> Stripe_core.Health.remove_channel h c
  | None -> ());
  if t.nominal_quanta <> [||] then
    t.nominal_quanta <-
      Array.init (n - 1) (fun i ->
          if i < c then t.nominal_quanta.(i) else t.nominal_quanta.(i + 1));
  recompute_mtu t

(* --- Gray-failure self-healing (PROTOCOL.md §13) ------------------- *)

let health t = t.health

let health_observe t ~channel ?sent ?lost ?corrupt ?dup ?goodput_ratio
    ?cadence_ratio () =
  match t.health with
  | None -> ()
  | Some h ->
    Stripe_core.Health.observe h ~channel ?sent ?lost ?corrupt ?dup
      ?goodput_ratio ?cadence_ratio ()

(* The quantum vector the health verdicts currently ask for: nominal,
   scaled per channel by probation. Quarantined channels keep their
   nominal quantum — they are suspended, so the value is dormant, and
   the probation quantum is installed at reinstatement. The Thm 5.1
   marker precondition (quantum >= max packet) caps how deep a
   probation cut can go. *)
let health_target_quanta t h =
  let floor_q =
    match Stripe_core.Scheduler.deficit (Stripe_core.Striper.scheduler t.striper) with
    | Some d -> (
      match Stripe_core.Deficit.max_packet d with Some mp -> mp | None -> 1)
    | None -> 1
  in
  Array.mapi
    (fun c nominal ->
      let scale = Stripe_core.Health.quantum_scale h c in
      if scale <= 0.0 || scale >= 1.0 then nominal
      else max floor_q (int_of_float (float_of_int nominal *. scale)))
    t.nominal_quanta

let health_tick t ~now =
  match t.health with
  | None -> []
  | Some h ->
    if t.detached then []
    else begin
      let transitions = Stripe_core.Health.sample h ~now in
      List.iter
        (fun tr ->
          match tr with
          | Stripe_core.Health.To_quarantine { channel; _ } ->
            if not (Stripe_core.Striper.suspended_channel t.striper channel)
            then Stripe_core.Striper.suspend_channel t.striper channel
          | Stripe_core.Health.To_probation
              { channel; from_quarantine = true } ->
            (* The timed reinstatement probe: resume fires the §5 reset
               barrier; the probation quantum lands with the retune
               below. *)
            if Stripe_core.Striper.suspended_channel t.striper channel then
              Stripe_core.Striper.resume_channel t.striper channel
          | Stripe_core.Health.To_probation _
          | Stripe_core.Health.To_suspect _
          | Stripe_core.Health.To_healthy _ ->
            ())
        transitions;
      (* Reconcile quanta with the verdicts — deferred, not dropped,
         while a staged receiver transition is in flight (a retune
         cannot overlap a pending add/remove/retune barrier). *)
      (match
         Stripe_core.Scheduler.deficit
           (Stripe_core.Striper.scheduler t.striper)
       with
      | Some d when t.nominal_quanta <> [||] ->
        let target = health_target_quanta t h in
        if target <> Stripe_core.Deficit.quanta d then begin
          let pending =
            match t.reseq with
            | Some r -> Stripe_core.Resequencer.transition_pending r
            | None -> false
          in
          if pending then t.health_deferred <- t.health_deferred + 1
          else begin
            t.health_retunes <- t.health_retunes + 1;
            (match t.reseq with
            | Some r -> Stripe_core.Resequencer.retune r ~quanta:target
            | None -> ());
            Stripe_core.Striper.retune t.striper ~quanta:target ()
          end
        end
      | Some _ | None -> ());
      transitions
    end

let health_retunes t = t.health_retunes
let health_deferred_retunes t = t.health_deferred
let n_members t = Array.length t.members
let member_queue_bytes t i = Iface.queue_bytes t.members.(i)
let member_link_up t i = Iface.link_up t.members.(i)
let dropped_no_member t = Stripe_core.Striper.undispatched_drops t.striper
let sent_datagrams t = t.n_sent
let delivered_datagrams t = t.n_delivered
let markers_sent t = Stripe_core.Striper.markers_sent t.striper
let reorder t = t.reorder_stats
let resequencer t = t.reseq
let striper t = t.striper
