open Stripe_packet

type t = {
  layer_name : string;
  members : Iface.t array;
  bundle_mtu : int;
  striper : Stripe_core.Striper.t;
  reseq : Stripe_core.Resequencer.t option;
  deliver_up : Ip.t -> unit;
  reorder_stats : Stripe_core.Reorder.t;
  (* A real kernel keeps the frame <-> datagram association by passing
     mbuf pointers through the striping layer; the simulation passes the
     protocol-visible Packet.t through striper/resequencer and
     reassociates the enclosing datagram via the measurement-only [seq]
     id, which is unique per sender stream and never consulted by the
     protocol logic itself. *)
  rx_envelopes : (int, Ip.t) Hashtbl.t;
  mutable tx_envelope : Ip.t option;
  auto_suspend : bool;
  mutable n_sent : int;
  mutable n_delivered : int;
}

let deliver_ip t ip =
  t.n_delivered <- t.n_delivered + 1;
  Stripe_core.Reorder.observe t.reorder_stats ~seq:ip.Ip.body.Packet.seq;
  t.deliver_up ip

let create ~name ~members ~scheduler ?marker ?now ?sink ?(resequence = true)
    ?(auto_suspend = true) ?watchdog ?rx_buffer_bytes ?overflow_policy
    ?on_pressure ~deliver_up () =
  let n = Array.length members in
  if n = 0 then invalid_arg "Stripe_layer.create: no member interfaces";
  if Stripe_core.Scheduler.n_channels scheduler <> n then
    invalid_arg "Stripe_layer.create: scheduler arity <> member count";
  let bundle_mtu =
    Array.fold_left (fun acc m -> min acc (Iface.mtu m)) max_int members
  in
  let rx_envelopes = Hashtbl.create 1024 in
  let reorder_stats = Stripe_core.Reorder.create () in
  (* The striper's and resequencer's callbacks need the layer record,
     which needs them in turn; tie the knot through a forward cell. *)
  let self = ref None in
  let force_self () =
    match !self with
    | Some layer -> layer
    | None -> assert false
  in
  let striper =
    Stripe_core.Striper.create ~scheduler ?marker ?now ?sink
      ~emit:(fun ~channel pkt ->
        let layer = force_self () in
        let frame =
          if Packet.is_marker pkt then Iface.Marker_frame pkt
          else
            match layer.tx_envelope with
            | Some ip -> Iface.Striped_frame ip
            | None -> invalid_arg "Stripe_layer: data emit without envelope"
        in
        Iface.send layer.members.(channel) frame)
      ()
  in
  let reseq =
    if not resequence then None
    else
      match Stripe_core.Scheduler.deficit scheduler with
      | None ->
        invalid_arg
          "Stripe_layer.create: logical reception requires a CFQ scheduler \
           (pass ~resequence:false for non-causal baselines)"
      | Some d ->
        Some
          (Stripe_core.Resequencer.create
             ~deficit:(Stripe_core.Deficit.clone_initial d)
             ?now ?sink ?watchdog ?budget_bytes:rx_buffer_bytes
             ?overflow:overflow_policy ?on_pressure
             ~deliver:(fun ~channel:_ pkt ->
               let layer = force_self () in
               match Hashtbl.find_opt layer.rx_envelopes pkt.Packet.seq with
               | Some ip ->
                 Hashtbl.remove layer.rx_envelopes pkt.Packet.seq;
                 deliver_ip layer ip
               | None ->
                 invalid_arg "Stripe_layer: resequencer delivered unknown packet")
             ())
  in
  let layer =
    {
      layer_name = name;
      members;
      bundle_mtu;
      striper;
      reseq;
      deliver_up;
      reorder_stats;
      rx_envelopes;
      tx_envelope = None;
      auto_suspend;
      n_sent = 0;
      n_delivered = 0;
    }
  in
  self := Some layer;
  (* Dead-member detection: a member's carrier transition suspends or
     resumes its channel in the striper. Resume fires the §5 reset
     barrier (see {!Stripe_core.Striper.resume_channel}), so the peer's
     resequencer resynchronizes. Carrier watchers fire from the fault /
     link layer, never from inside [Striper.push], so the scheduler is
     between packets when the suspension lands. *)
  if auto_suspend then
    Array.iteri
      (fun channel m ->
        Iface.on_carrier m (fun ~up ->
            if up then Stripe_core.Striper.resume_channel striper channel
            else Stripe_core.Striper.suspend_channel striper channel))
      members;
  (* Register receive-side demux on every member. *)
  Array.iteri
    (fun channel m ->
      let on_striped frame =
        match frame with
        | Iface.Striped_frame ip -> (
          match layer.reseq with
          | Some r ->
            Hashtbl.replace layer.rx_envelopes ip.Ip.body.Packet.seq ip;
            Stripe_core.Resequencer.receive r ~channel ip.Ip.body
          | None -> deliver_ip layer ip)
        | Iface.Marker_frame pkt -> (
          match layer.reseq with
          | Some r -> Stripe_core.Resequencer.receive r ~channel pkt
          | None -> ())
        | Iface.Ip_frame _ -> ()
      in
      Iface.set_handler m Iface.Cp_striped_ip on_striped;
      Iface.set_handler m Iface.Cp_marker on_striped)
    members;
  layer

let name t = t.layer_name
let mtu t = t.bundle_mtu

let send t ip =
  if Ip.size ip > t.bundle_mtu then
    invalid_arg
      (Printf.sprintf "Stripe_layer.send(%s): datagram %d exceeds bundle MTU %d"
         t.layer_name (Ip.size ip) t.bundle_mtu);
  t.n_sent <- t.n_sent + 1;
  t.tx_envelope <- Some ip;
  Stripe_core.Striper.push t.striper ip.Ip.body;
  t.tx_envelope <- None;
  (* Belt-and-braces tx-failure detection: catch a member that was
     already down before the carrier watcher was registered (or when the
     link layer cannot signal carrier). Runs after [push] returns so the
     scheduler is never mutated mid-dispatch. *)
  if t.auto_suspend then
    Array.iteri
      (fun c m ->
        if
          (not (Iface.link_up m))
          && not (Stripe_core.Striper.suspended_channel t.striper c)
        then Stripe_core.Striper.suspend_channel t.striper c)
      t.members

let send_reset t = Stripe_core.Striper.send_reset t.striper

let n_members t = Array.length t.members
let member_queue_bytes t i = Iface.queue_bytes t.members.(i)
let member_link_up t i = Iface.link_up t.members.(i)
let dropped_no_member t = Stripe_core.Striper.undispatched_drops t.striper
let sent_datagrams t = t.n_sent
let delivered_datagrams t = t.n_delivered
let markers_sent t = Stripe_core.Striper.markers_sent t.striper
let reorder t = t.reorder_stats
let resequencer t = t.reseq
let striper t = t.striper
