type codepoint =
  | Cp_ip
  | Cp_striped_ip
  | Cp_marker

type frame =
  | Ip_frame of Ip.t
  | Striped_frame of Ip.t
  | Marker_frame of Stripe_packet.Packet.t

let frame_codepoint = function
  | Ip_frame _ -> Cp_ip
  | Striped_frame _ -> Cp_striped_ip
  | Marker_frame _ -> Cp_marker

let frame_payload_size = function
  | Ip_frame ip | Striped_frame ip -> Ip.size ip
  | Marker_frame pkt -> pkt.Stripe_packet.Packet.size

let frame_wire_size ~overhead frame = frame_payload_size frame + overhead

type t = {
  iface_name : string;
  ip_addr : Ip.addr;
  net_prefix : int;
  iface_mtu : int;
  link_overhead : int;
  arp : Arp.t;
  link : frame Stripe_netsim.Link.t;
  mutable handlers : (codepoint * (frame -> unit)) list;
  (* Device output queue: frames leave in submission order even when the
     head is waiting on address resolution, so the channel stays FIFO —
     markers must never overtake data queued behind an ARP miss. *)
  outq : frame Queue.t;
  mutable draining : bool;
  mutable n_tx : int;
  mutable n_rx : int;
  mutable n_tx_failures : int;
  mutable n_arp_failures : int;
  mutable n_unclaimed : int;
}

let create _sim ~name ~addr ~prefix ~mtu
    ?(link_overhead = Stripe_packet.Sizes.ethernet_overhead) ~arp ~link () =
  if mtu <= 0 then invalid_arg "Iface.create: mtu must be positive";
  {
    iface_name = name;
    ip_addr = addr;
    net_prefix = prefix;
    iface_mtu = mtu;
    link_overhead;
    arp;
    link;
    handlers = [];
    outq = Queue.create ();
    draining = false;
    n_tx = 0;
    n_rx = 0;
    n_tx_failures = 0;
    n_arp_failures = 0;
    n_unclaimed = 0;
  }

let name t = t.iface_name
let addr t = t.ip_addr
let prefix t = t.net_prefix
let mtu t = t.iface_mtu

let set_handler t cp f =
  t.handlers <- (cp, f) :: List.remove_assoc cp t.handlers

let rx t frame =
  t.n_rx <- t.n_rx + 1;
  match List.assoc_opt (frame_codepoint frame) t.handlers with
  | Some f -> f frame
  | None -> t.n_unclaimed <- t.n_unclaimed + 1

let transmit t frame =
  t.n_tx <- t.n_tx + 1;
  let size = frame_wire_size ~overhead:t.link_overhead frame in
  if not (Stripe_netsim.Link.send t.link ~size frame) then
    t.n_tx_failures <- t.n_tx_failures + 1

(* Drain the device queue head by head; a head awaiting ARP holds back
   everything behind it (head-of-line, as in a real transmit ring). *)
let rec drain t =
  match Queue.peek_opt t.outq with
  | None -> t.draining <- false
  | Some frame -> (
    t.draining <- true;
    match frame with
    | Marker_frame _ ->
      ignore (Queue.pop t.outq);
      transmit t frame;
      drain t
    | Ip_frame ip | Striped_frame ip ->
      (* Resolve the on-link next hop. Hosts in this model are directly
         connected (host routes point at member interfaces), so the next
         hop is the destination itself. *)
      Arp.resolve t.arp ip.Ip.dst (fun answer ->
          ignore (Queue.pop t.outq);
          (match answer with
          | Some _mac -> transmit t frame
          | None -> t.n_arp_failures <- t.n_arp_failures + 1);
          drain t))

let send t frame =
  if frame_payload_size frame > t.iface_mtu then
    invalid_arg
      (Printf.sprintf "Iface.send(%s): payload %d exceeds MTU %d" t.iface_name
         (frame_payload_size frame) t.iface_mtu);
  Queue.add frame t.outq;
  if not t.draining then drain t

let queue_bytes t = Stripe_netsim.Link.queue_bytes t.link
let link_up t = Stripe_netsim.Link.is_up t.link
let on_carrier t f = Stripe_netsim.Link.on_carrier t.link f
let tx_frames t = t.n_tx
let rx_frames t = t.n_rx
let tx_failures t = t.n_tx_failures
let arp_failures t = t.n_arp_failures
let unclaimed_frames t = t.n_unclaimed
