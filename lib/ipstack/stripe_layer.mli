(** The strIPe virtual interface (§6.1).

    strIPe sits between IP and several real interfaces as one more IP
    convergence layer: a {e virtual} interface that IP routes packets to
    exactly like a real one. On the send side it runs the striping
    algorithm over the member interfaces, transmitting unmodified IP
    datagrams under the [Cp_striped_ip] codepoint and marker packets under
    [Cp_marker]; on the receive side the members hand striped frames to
    the layer's resequencer, which restores order before passing
    datagrams up to IP. Striping is thereby transparent to IP and
    everything above it.

    The layer's MTU is the minimum MTU of its members (§6.1: striping
    restricts the bundle MTU to the smallest member MTU, which is why the
    paper recommends striping links with similar MTUs). *)

type t

val create :
  name:string ->
  members:Iface.t array ->
  scheduler:Stripe_core.Scheduler.t ->
  ?marker:Stripe_core.Marker.policy ->
  ?now:(unit -> float) ->
  ?sink:Stripe_obs.Sink.t ->
  ?resequence:bool ->
  ?auto_suspend:bool ->
  ?watchdog:Stripe_core.Resequencer.watchdog ->
  ?rx_buffer_bytes:int ->
  ?overflow_policy:Stripe_core.Resequencer.overflow ->
  ?on_pressure:(high:bool -> unit) ->
  ?health:Stripe_core.Health.config ->
  deliver_up:(Ip.t -> unit) ->
  unit ->
  t
(** [create ~name ~members ~scheduler ~deliver_up ()] builds the virtual
    interface and registers itself as the [Cp_striped_ip] and [Cp_marker]
    handler on every member. The scheduler's channel count must equal the
    member count. [resequence] (default [true]) enables logical
    reception; with [false] arriving datagrams go straight up in physical
    arrival order — the "no logical reception" variants of Figure 15.
    [sink] is handed to the embedded striper and resequencer, so one sink
    observes the layer's whole send/deliver pipeline.

    [auto_suspend] (default [true]) makes the layer watch every member's
    carrier ({!Iface.on_carrier}): a member going down is suspended in
    the striper (load moves to the survivors), a member coming back is
    resumed, which fires the §5 reset barrier to resynchronize the peer.
    Pass [false] to model a sender that cannot see link state — the
    receiver-only recovery scenario. [watchdog] configures the
    resequencer's marker-cadence dead-channel watchdog (see
    {!Stripe_core.Resequencer.watchdog}). [rx_buffer_bytes],
    [overflow_policy], and [on_pressure] bound the embedded resequencer's
    memory and expose its backpressure signal (see
    {!Stripe_core.Resequencer.create}'s [budget_bytes], [overflow], and
    [on_pressure]).

    [health] arms gray-failure self-healing (PROTOCOL.md §13): a
    {!Stripe_core.Health} engine over the members, driven by
    {!health_observe}/{!health_tick}. Requires a CFQ scheduler (the
    probation quantum cut rides {!Stripe_core.Deficit.retune}). The
    engine's liveness callback treats a member as live when its
    physical carrier is up. Combining [health] with an external
    adaptive-retune policy ([--adapt]-style) on the same layer is
    unsupported — both would fight over the quantum vector. *)

val name : t -> string

val mtu : t -> int
(** Minimum member MTU. *)

val send : t -> Ip.t -> unit
(** Stripe one IP datagram. Raises [Invalid_argument] if it exceeds the
    bundle MTU. When {e every} member is down or suspended the datagram
    is dropped and counted ({!dropped_no_member}) — the layer never
    raises for link failures, like a real virtual interface. *)

val send_reset : t -> unit
(** Emit the §5 crash-recovery reset barrier on every member (see
    {!Stripe_core.Striper.send_reset}): the peer layer's resequencer
    reinitializes once the barrier reaches it on all members. Used when
    the host's striping state was reinitialized (reboot) or a watchdog
    detected corruption. *)

val crash_restart_sender : ?quanta:int array -> t -> unit
(** Full sender-endpoint crash + restart (PROTOCOL.md §12,
    {!Stripe_core.Striper.crash_restart}): all striping state — round
    pointer, deficits, staged retunes, suspensions, marker cadence — is
    lost; the engine rebuilds on [quanta] (default: the configured
    vector; pass a cold {!Stripe_core.Rate_probe} plan to model
    capacity re-learning), the sender's epoch increments, and
    epoch-stamped reset markers announce the new incarnation. Members
    whose physical carrier is down are re-suspended from the link state
    (with [auto_suspend]), not from remembered suspensions. Raises
    [Invalid_argument] on a detached layer. *)

val crash_restart_receiver : t -> int
(** Full receiver-endpoint crash + restart
    ({!Stripe_core.Resequencer.crash_restart}): buffered frames, the
    simulated engine, epoch knowledge, and the frame<->datagram
    associations are lost. Returns the number of buffered data frames
    wiped. Resynchronization rides the sender's ordinary marker cadence
    (about one marker interval); frames arriving before a channel's
    first post-restart marker are discarded by its crash-sync. No-op
    returning 0 when the layer was built with [~resequence:false]. *)

val detach : t -> unit
(** Tear the bundle down (churn): the layer's codepoint handlers and
    carrier watchers on every member go permanently quiet, pending
    receive-side state is dropped, and {!send} raises from now on. The
    member interfaces are immediately reusable by a new bundle — its
    [create] replaces the codepoint handlers, and the detached layer's
    watchers (which the link layer cannot unregister) are inert.
    Idempotent. *)

val detached : t -> bool

val add_member : t -> quantum:int -> Iface.t -> int
(** [add_member t ~quantum m] grows the bundle live (PROTOCOL.md §11):
    the local resequencer stages the width change, the striper widens
    and fires the §5 reset barrier ({!Stripe_core.Striper.add_channel}),
    and [m]'s codepoint handlers and carrier watcher are attached. The
    bundle MTU is recomputed, so it may {e shrink} if [m]'s MTU is below
    the current minimum. Returns the new member's index (= old width).
    Membership changes are symmetric configuration: the peer layer must
    perform the matching [add_member] for traffic to flow both ways.
    Raises [Invalid_argument] if [m] is already a member, if another
    receive-side transition is still waiting for its barrier, or if
    [quantum] violates the Thm 5.1 precondition (< max packet size). *)

val remove_member : t -> int -> unit
(** [remove_member t c] shrinks the bundle live: the local resequencer
    stages the removal (it keeps draining [c] until the goodbye barrier
    completes), the striper emits the goodbye reset while [c] still
    exists and then splices it out
    ({!Stripe_core.Striper.remove_channel}), members above [c] shift
    down one index, and the bundle MTU is recomputed. The send side
    adopts the new numbering immediately; the receive-side demux keeps
    resolving arrivals (including the peer's goodbye markers) to the
    old numbering until the resequencer adopts the staged removal at
    the barrier, so in-flight frames land on the channels they were
    sent for. The removed interface's handlers stay registered on it
    but ignore all further frames once the removal completes. Raises
    [Invalid_argument] for a bad index, when removing the last member,
    or while another transition is pending. *)

val health : t -> Stripe_core.Health.t option
(** The gray-failure health engine, when [health] was passed. *)

val health_observe :
  t ->
  channel:int ->
  ?sent:int ->
  ?lost:int ->
  ?corrupt:int ->
  ?dup:int ->
  ?goodput_ratio:float ->
  ?cadence_ratio:float ->
  unit ->
  unit
(** Feed per-channel evidence into the health engine's current window
    ({!Stripe_core.Health.observe}); no-op without [health]. *)

val health_tick : t -> now:float -> Stripe_core.Health.transition list
(** Close a health evidence window and {e apply} the verdicts:
    quarantines suspend the member (§5 barrier), timed reinstatements
    resume it, and the quantum vector is reconciled — each channel at
    nominal or its probation fraction, floored at the striper's max
    packet size (Thm 5.1) — via a live retune at the next round
    boundary. The retune is deferred (not dropped) while a staged
    receiver transition is pending; the target is recomputed next tick.
    Returns the engine's transitions. No-op returning [[]] without
    [health] or on a detached layer. *)

val health_retunes : t -> int
(** Quantum retunes {!health_tick} has applied. *)

val health_deferred_retunes : t -> int
(** Retunes {!health_tick} deferred because a transition was pending. *)

val n_members : t -> int

val member_queue_bytes : t -> int -> int
(** Transmit queue occupancy of member [i] — the oracle for an SQF
    scheduler over this bundle. *)

val member_link_up : t -> int -> bool
(** Carrier state of member [i]'s underlying link. *)

val dropped_no_member : t -> int
(** Datagrams dropped by {!send} because every member was suspended. *)

val sent_datagrams : t -> int
val delivered_datagrams : t -> int
val markers_sent : t -> int
val reorder : t -> Stripe_core.Reorder.t
(** Misordering statistics of the stream delivered up to IP. *)

val resequencer : t -> Stripe_core.Resequencer.t option
(** The logical-reception engine, when [resequence] is on. *)

val striper : t -> Stripe_core.Striper.t
